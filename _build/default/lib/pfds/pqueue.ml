(** Purely functional FIFO queue in persistent memory.

    Okasaki's batched queue: a descriptor node [front; rear] holding two
    cons lists.  Enqueue conses onto [rear]; dequeue pops [front] and,
    when [front] runs dry, reverses [rear] into a fresh front list.  The
    occasional reversal is why the paper observes the MOD queue flushing
    more cachelines than PMDK on pops (Section 6.4).

    Invariant: if [front] is null the queue is empty ([rear] is null too). *)

type root = Pmem.Word.t

let make_desc heap ~front ~rear ~front_shared ~rear_shared =
  let q = Node.alloc heap ~words:2 in
  (if front_shared then Node.set_shared heap q 0 front
   else Node.set heap q 0 front);
  (if rear_shared then Node.set_shared heap q 1 rear
   else Node.set heap q 1 rear);
  Node.finish heap q;
  Pmem.Word.of_ptr q

(* An owned empty-queue descriptor. *)
let create heap =
  make_desc heap ~front:Pmem.Word.null ~rear:Pmem.Word.null ~front_shared:false
    ~rear_shared:false

let front_of heap root = Node.get heap (Pmem.Word.to_ptr root) 0
let rear_of heap root = Node.get heap (Pmem.Word.to_ptr root) 1
let is_empty heap root = Pmem.Word.is_null (front_of heap root)

(* Reverse a cons list into a fresh list, sharing the value words. *)
let reverse_list heap list =
  let rec go src acc =
    if Pmem.Word.is_null src then acc
    else begin
      let node = Pmem.Word.to_ptr src in
      let v = Node.get heap node 0 in
      let fresh = Node.alloc heap ~words:2 in
      Node.set_shared heap fresh 0 v;
      Node.set heap fresh 1 acc;
      Node.finish heap fresh;
      go (Node.get heap node 1) (Pmem.Word.of_ptr fresh)
    end
  in
  go list Pmem.Word.null

(* [v] is owned; the result is an owned new descriptor. *)
let enqueue heap root v =
  let front = front_of heap root in
  let rear = rear_of heap root in
  if Pmem.Word.is_null front then begin
    (* empty queue: the new element becomes the whole front *)
    let f = Pstack.push heap Pmem.Word.null v in
    make_desc heap ~front:f ~rear:Pmem.Word.null ~front_shared:false
      ~rear_shared:false
  end
  else begin
    let r = Pstack.push heap rear v in
    make_desc heap ~front ~rear:r ~front_shared:true ~rear_shared:false
  end

(* Returns the borrowed head value and an owned new descriptor. *)
let dequeue heap root =
  let front = front_of heap root in
  if Pmem.Word.is_null front then None
  else begin
    let node = Pmem.Word.to_ptr front in
    let v = Node.get heap node 0 in
    let next = Node.get heap node 1 in
    let desc =
      if not (Pmem.Word.is_null next) then
        make_desc heap ~front:next ~rear:(rear_of heap root) ~front_shared:true
          ~rear_shared:true
      else begin
        let rear = rear_of heap root in
        let f = reverse_list heap rear in
        make_desc heap ~front:f ~rear:Pmem.Word.null ~front_shared:false
          ~rear_shared:false
      end
    in
    Some (v, desc)
  end

let length heap root =
  Pstack.length heap (front_of heap root) + Pstack.length heap (rear_of heap root)

(* FIFO-order iteration. *)
let iter heap root fn =
  Pstack.iter heap (front_of heap root) fn;
  let rear_elems = Pstack.to_list heap (rear_of heap root) in
  List.iter fn (List.rev rear_elems)

let to_list heap root =
  let acc = ref [] in
  iter heap root (fun w -> acc := w :: !acc);
  List.rev !acc
