(** Relaxed Radix Balanced (RRB) sequence in persistent memory.

    The relaxed layer of the paper's vector (Stucki et al., ICFP'15 --
    reference [44]): interior nodes carry size tables, enabling O(log n)
    concatenation and slicing with structural sharing.  {!Pvec} remains
    the operation set the paper's evaluation measures; this module covers
    the rest of the RRB interface.  All operations are pure: owned
    results, borrowed arguments, unordered clwbs, no fences. *)

type root = Pmem.Word.t
(** A sequence version: pointer to a [size; height; root] descriptor. *)

val create : Pmalloc.Heap.t -> root
(** An owned empty sequence. *)

val of_words : Pmalloc.Heap.t -> Pmem.Word.t list -> root
(** Build a sequence from owned value words (bulk load). *)

val size : Pmalloc.Heap.t -> root -> int
val is_empty : Pmalloc.Heap.t -> root -> bool

val get : Pmalloc.Heap.t -> root -> int -> Pmem.Word.t
(** Size-table descent; raises [Invalid_argument] out of bounds. *)

val set : Pmalloc.Heap.t -> root -> int -> Pmem.Word.t -> root
(** Point update by path copying. *)

val push_back : Pmalloc.Heap.t -> root -> Pmem.Word.t -> root

val concat : Pmalloc.Heap.t -> root -> root -> root
(** [concat heap a b] is [a @ b]; both arguments are fully shared. *)

val slice : Pmalloc.Heap.t -> root -> pos:int -> len:int -> root
(** The subsequence [pos, pos+len); the original is untouched. *)

val iter : Pmalloc.Heap.t -> root -> (Pmem.Word.t -> unit) -> unit
val to_list : Pmalloc.Heap.t -> root -> Pmem.Word.t list
