(** Compressed Hash-Array Mapped Prefix tree (CHAMP) in persistent memory
    — the functional map/set under the paper's MOD map and set
    (Steindorfer & Vinju, OOPSLA'15; the paper's reference [43]).

    All update operations are pure: they copy the O(log32 n) nodes on the
    path to the affected slot, share everything else, flush fresh nodes
    with unordered clwbs, and return an owned new root.  The single fence
    belongs to Commit. *)

val bits_per_level : int
val branch : int

val popcount : int -> int
(** Population count, used for bitmap-compressed slot indexing. *)

module Make (K : Kv.CODEC) (V : Kv.CODEC) : sig
  type key = K.t
  type value = V.t

  val empty : Pmem.Word.t
  (** The empty map: a null version. *)

  val is_empty : Pmem.Word.t -> bool

  val find : Pmalloc.Heap.t -> Pmem.Word.t -> key -> value option
  val find_word : Pmalloc.Heap.t -> Pmem.Word.t -> key -> Pmem.Word.t option
  val mem : Pmalloc.Heap.t -> Pmem.Word.t -> key -> bool

  val insert :
    Pmalloc.Heap.t -> Pmem.Word.t -> key -> value -> Pmem.Word.t * bool
  (** [(new_root, grew)]; [grew] is false when an existing binding was
      replaced.  The new root is owned; the old version is untouched. *)

  val remove : Pmalloc.Heap.t -> Pmem.Word.t -> key -> Pmem.Word.t * bool
  (** [(new_root, removed)].  When the key is absent the original root is
      returned un-owned and no commit is needed.  Deletion maintains the
      canonical CHAMP form: single surviving entries migrate up into their
      parents. *)

  val iter : Pmalloc.Heap.t -> Pmem.Word.t -> (key -> value -> unit) -> unit

  val iter_words :
    Pmalloc.Heap.t -> Pmem.Word.t -> (Pmem.Word.t -> Pmem.Word.t -> unit) -> unit

  val fold :
    Pmalloc.Heap.t -> Pmem.Word.t -> (key -> value -> 'a -> 'a) -> 'a -> 'a

  val cardinal : Pmalloc.Heap.t -> Pmem.Word.t -> int
end
