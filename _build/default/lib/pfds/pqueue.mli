(** Purely functional FIFO queue in persistent memory: Okasaki's batched
    queue (front list + rear list, with occasional reversal -- the source
    of the MOD queue's extra flushes on pops, paper Section 6.4).

    Invariant: a null front means the queue is empty. *)

type root = Pmem.Word.t
(** A queue version: pointer to a two-word [front; rear] descriptor. *)

val create : Pmalloc.Heap.t -> root
(** An owned empty-queue version. *)

val is_empty : Pmalloc.Heap.t -> root -> bool

val enqueue : Pmalloc.Heap.t -> root -> Pmem.Word.t -> root
(** [enqueue heap q w] appends the owned value word [w]; returns an owned
    new version sharing almost all of [q]. *)

val dequeue : Pmalloc.Heap.t -> root -> (Pmem.Word.t * root) option
(** Returns the borrowed head value and an owned new version.  When the
    front list empties, the rear list is reversed out-of-place. *)

val length : Pmalloc.Heap.t -> root -> int
val iter : Pmalloc.Heap.t -> root -> (Pmem.Word.t -> unit) -> unit
(** FIFO-order iteration. *)

val to_list : Pmalloc.Heap.t -> root -> Pmem.Word.t list
