(** Persistent bit-partitioned vector in persistent memory (the radix core
    of the RRB vector the paper's MOD vector uses; for the operations the
    evaluation exercises -- push_back, update, read, pop_back -- the RRB
    tree degenerates to this 32-way trie with a tail buffer).

    Every update is pure: it path-copies O(log32 n) nodes, shares the
    rest, flushes the fresh nodes with unordered clwbs, and returns an
    owned new descriptor.  This tree-vs-flat-array trade is exactly why
    the paper's vector workloads favour PMDK (Sections 6.3-6.5). *)

type root = Pmem.Word.t
(** A vector version: pointer to a [size; shift; root; tail] descriptor. *)

val create : Pmalloc.Heap.t -> root
(** An owned empty-vector version. *)

val size : Pmalloc.Heap.t -> root -> int
val is_empty : Pmalloc.Heap.t -> root -> bool

val get : Pmalloc.Heap.t -> root -> int -> Pmem.Word.t
(** O(log32 n); raises [Invalid_argument] out of bounds. *)

val push_back : Pmalloc.Heap.t -> root -> Pmem.Word.t -> root
(** Append an owned value word; amortized O(1) fresh nodes thanks to the
    tail buffer. *)

val set : Pmalloc.Heap.t -> root -> int -> Pmem.Word.t -> root
(** Point update by path copying. *)

val pop_back : Pmalloc.Heap.t -> root -> Pmem.Word.t * root
(** Remove the last element; returns it (borrowed) and an owned new
    version.  Raises [Invalid_argument] on an empty vector. *)

val iter : Pmalloc.Heap.t -> root -> (Pmem.Word.t -> unit) -> unit
val to_list : Pmalloc.Heap.t -> root -> Pmem.Word.t list
