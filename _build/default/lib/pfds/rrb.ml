(** Relaxed Radix Balanced (RRB) sequence in persistent memory.

    {!Pvec} covers the vector operations the paper's evaluation exercises
    (push/update/read/pop); this module adds the {e relaxed} layer that
    makes the structure a genuine RRB tree (Stucki et al., ICFP'15, the
    paper's reference [44]): interior nodes carry size tables, enabling
    O(log n) {!concat} and {!slice} with structural sharing -- still pure,
    still flushed with unordered clwbs, still one fence at Commit.

    Layout (all [Scanned] blocks, tagged words):
    - leaf:       [v0; ...; v_{k-1}]                      (1 <= k <= 32)
    - interior:   [k; size_1; ...; size_k; c_1; ...; c_k]
      where size_i is the cumulative element count through child i;
    - descriptor: [size; height; root]
      with [height] = number of interior levels (0 = root is a leaf).

    Rebalancing at concatenation seams is the simplified "repartition the
    seam level" scheme: children at the seam are repacked into nodes of
    arity <= 32.  This keeps every node valid (size tables make any arity
    searchable) at a small cost in worst-case density compared to the full
    e-bounded RRB plan. *)

let branch = 32

type root = Pmem.Word.t

(* -- node accessors -------------------------------------------------------- *)

let arity heap node = Pmem.Word.to_int (Node.get heap node 0)
let cum_size heap node i = Pmem.Word.to_int (Node.get heap node (1 + i))
let child heap node i = Node.get heap node (1 + arity heap node + i)
let interior_used k = 1 + (2 * k)

(* Element count of a node at [height]. *)
let node_size heap ~height node =
  if height = 0 then Pmalloc.Allocator.used_of (Pmalloc.Heap.allocator heap) node
  else cum_size heap node (arity heap node - 1)

(* Build a leaf from owned/shared value words. *)
let make_leaf heap values =
  let k = List.length values in
  assert (k >= 1 && k <= branch);
  let n = Node.alloc heap ~words:k in
  List.iteri
    (fun i (w, owned) ->
      if owned then Node.set heap n i w else Node.set_shared heap n i w)
    values;
  Node.finish heap n;
  n

(* Build an interior node above [children] = (node, height-1, owned) list. *)
let make_interior heap ~height children =
  let k = List.length children in
  assert (k >= 1 && k <= branch);
  let n = Node.alloc heap ~words:(interior_used k) in
  Node.set heap n 0 (Pmem.Word.of_int k);
  let running = ref 0 in
  List.iteri
    (fun i (c, owned) ->
      running := !running + node_size heap ~height:(height - 1) c;
      Node.set heap n (1 + i) (Pmem.Word.of_int !running);
      let w = Pmem.Word.of_ptr c in
      if owned then Node.set heap n (1 + k + i) w
      else Node.set_shared heap n (1 + k + i) w)
    children;
  Node.finish heap n;
  n

(* Locate the child holding element [i]; returns (child index, offset of
   the child's first element). *)
let find_child heap node i =
  let k = arity heap node in
  let rec scan c = if cum_size heap node c > i then c else scan (c + 1) in
  let c = scan 0 in
  let before = if c = 0 then 0 else cum_size heap node (c - 1) in
  ignore k;
  (c, before)

(* -- descriptor ------------------------------------------------------------- *)

let desc_words = 3

let make_desc heap ~size ~height ~root ~root_owned =
  let d = Node.alloc heap ~words:desc_words in
  Node.set heap d 0 (Pmem.Word.of_int size);
  Node.set heap d 1 (Pmem.Word.of_int height);
  (if root_owned then Node.set heap d 2 root else Node.set_shared heap d 2 root);
  Node.finish heap d;
  Pmem.Word.of_ptr d

let create heap =
  make_desc heap ~size:0 ~height:0 ~root:Pmem.Word.null ~root_owned:true

let size heap v = Pmem.Word.to_int (Node.get heap (Pmem.Word.to_ptr v) 0)
let height_of heap v = Pmem.Word.to_int (Node.get heap (Pmem.Word.to_ptr v) 1)
let root_of heap v = Node.get heap (Pmem.Word.to_ptr v) 2
let is_empty heap v = size heap v = 0

let check_bounds heap v i fn =
  let n = size heap v in
  if i < 0 || i >= n then
    invalid_arg (Printf.sprintf "Rrb.%s: index %d out of bounds (size %d)" fn i n)

(* -- read paths -------------------------------------------------------------- *)

let get heap v i =
  check_bounds heap v i "get";
  let rec go height node i =
    if height = 0 then Node.get heap node i
    else begin
      let c, before = find_child heap node i in
      go (height - 1) (Pmem.Word.to_ptr (child heap node c)) (i - before)
    end
  in
  go (height_of heap v) (Pmem.Word.to_ptr (root_of heap v)) i

let iter heap v fn =
  let rec go height node =
    if height = 0 then begin
      let used = Pmalloc.Allocator.used_of (Pmalloc.Heap.allocator heap) node in
      for i = 0 to used - 1 do
        fn (Node.get heap node i)
      done
    end
    else
      for c = 0 to arity heap node - 1 do
        go (height - 1) (Pmem.Word.to_ptr (child heap node c))
      done
  in
  if not (is_empty heap v) then go (height_of heap v) (Pmem.Word.to_ptr (root_of heap v))

let to_list heap v =
  let acc = ref [] in
  iter heap v (fun w -> acc := w :: !acc);
  List.rev !acc

(* -- update ------------------------------------------------------------------ *)

let set heap v i w =
  check_bounds heap v i "set";
  let rec go height node i =
    if height = 0 then begin
      let used = Pmalloc.Allocator.used_of (Pmalloc.Heap.allocator heap) node in
      let values =
        List.init used (fun s ->
            if s = i then (w, true) else (Node.get heap node s, false))
      in
      make_leaf heap values
    end
    else begin
      let c, before = find_child heap node i in
      let fresh_child =
        go (height - 1) (Pmem.Word.to_ptr (child heap node c)) (i - before)
      in
      let k = arity heap node in
      let children =
        List.init k (fun s ->
            if s = c then (fresh_child, true)
            else (Pmem.Word.to_ptr (child heap node s), false))
      in
      make_interior heap ~height children
    end
  in
  let root' = go (height_of heap v) (Pmem.Word.to_ptr (root_of heap v)) i in
  make_desc heap ~size:(size heap v) ~height:(height_of heap v)
    ~root:(Pmem.Word.of_ptr root') ~root_owned:true

(* -- construction ------------------------------------------------------------ *)

let rec chunk n = function
  | [] -> []
  | l ->
      let rec take k acc rest =
        match (k, rest) with
        | 0, _ | _, [] -> (List.rev acc, rest)
        | k, x :: tl -> take (k - 1) (x :: acc) tl
      in
      let group, rest = take n [] l in
      group :: chunk n rest

(* Build a vector from owned value words. *)
let of_words heap words =
  match words with
  | [] -> create heap
  | _ ->
      let leaves =
        List.map
          (fun vs -> make_leaf heap (List.map (fun w -> (w, true)) vs))
          (chunk branch words)
      in
      let rec build height nodes =
        match nodes with
        | [ only ] ->
            make_desc heap ~size:(List.length words) ~height
              ~root:(Pmem.Word.of_ptr only) ~root_owned:true
        | several ->
            let parents =
              List.map
                (fun group ->
                  make_interior heap ~height:(height + 1)
                    (List.map (fun n -> (n, true)) group))
                (chunk branch several)
            in
            build (height + 1) parents
      in
      build 0 leaves

(* -- concatenation ------------------------------------------------------------ *)

(* Children of an interior node as (node, owned=false) cells. *)
let shared_children heap node =
  List.init (arity heap node) (fun c -> (Pmem.Word.to_ptr (child heap node c), false))

(* Merge two same-height trees; returns one or two (node, owned) cells at
   that height. *)
let rec concat_nodes heap ~height left right =
  if height = 0 then begin
    let lv =
      List.init
        (Pmalloc.Allocator.used_of (Pmalloc.Heap.allocator heap) left)
        (fun i -> (Node.get heap left i, false))
    in
    let rv =
      List.init
        (Pmalloc.Allocator.used_of (Pmalloc.Heap.allocator heap) right)
        (fun i -> (Node.get heap right i, false))
    in
    let all = lv @ rv in
    if List.length all <= branch then [ (make_leaf heap all, true) ]
    else begin
      let half = (List.length all + 1) / 2 in
      match chunk half all with
      | [ a; b ] -> [ (make_leaf heap a, true); (make_leaf heap b, true) ]
      | _ -> assert false
    end
  end
  else begin
    let lk = arity heap left in
    let l_last = Pmem.Word.to_ptr (child heap left (lk - 1)) in
    let r_first = Pmem.Word.to_ptr (child heap right 0) in
    let mid = concat_nodes heap ~height:(height - 1) l_last r_first in
    let l_rest = List.filteri (fun i _ -> i < lk - 1) (shared_children heap left) in
    let r_rest = List.filteri (fun i _ -> i > 0) (shared_children heap right) in
    let all = l_rest @ mid @ r_rest in
    (* repartition the seam level into <= 32-ary parents *)
    let groups = chunk branch all in
    List.map (fun g -> (make_interior heap ~height g, true)) groups
  end

(* Raise a tree to a greater height by wrapping in single-child parents. *)
let rec lift heap ~from_height ~to_height (node, owned) =
  if from_height = to_height then (node, owned)
  else
    lift heap ~from_height:(from_height + 1) ~to_height
      (make_interior heap ~height:(from_height + 1) [ (node, owned) ], true)

(* [concat heap a b] is the sequence [a @ b]; owned result, both arguments
   borrowed and fully shared. *)
let concat heap a b =
  if is_empty heap a then
    make_desc heap ~size:(size heap b) ~height:(height_of heap b)
      ~root:(root_of heap b) ~root_owned:false
  else if is_empty heap b then
    make_desc heap ~size:(size heap a) ~height:(height_of heap a)
      ~root:(root_of heap a) ~root_owned:false
  else begin
    let ha = height_of heap a and hb = height_of heap b in
    let h = max ha hb in
    let na =
      lift heap ~from_height:ha ~to_height:h
        (Pmem.Word.to_ptr (root_of heap a), false)
    in
    let nb =
      lift heap ~from_height:hb ~to_height:h
        (Pmem.Word.to_ptr (root_of heap b), false)
    in
    let top =
      match (na, nb) with
      | (la, lo), (rb, ro) ->
          let parts = concat_nodes heap ~height:h la rb in
          (* concat_nodes shares its borrowed inputs; consume lifted
             ownership if any was created *)
          (if lo then Pmalloc.Heap.release heap la);
          (if ro then Pmalloc.Heap.release heap rb);
          parts
    in
    let total = size heap a + size heap b in
    match top with
    | [ (only, _) ] ->
        make_desc heap ~size:total ~height:h ~root:(Pmem.Word.of_ptr only)
          ~root_owned:true
    | two ->
        let root = make_interior heap ~height:(h + 1) two in
        make_desc heap ~size:total ~height:(h + 1)
          ~root:(Pmem.Word.of_ptr root) ~root_owned:true
  end

let push_back heap v w =
  let single = of_words heap [ w ] in
  let result = concat heap v single in
  (* the temporary one-element vector was never installed anywhere *)
  Pmalloc.Heap.release heap (Pmem.Word.to_ptr single);
  result

(* -- slicing ------------------------------------------------------------------ *)

(* Keep elements [0, count) of a node; returns None when count = 0,
   otherwise an owned (node, height) after collapsing singleton chains. *)
let rec take_node heap ~height node count =
  if count = 0 then None
  else if height = 0 then begin
    let values = List.init count (fun i -> (Node.get heap node i, false)) in
    Some (make_leaf heap values, 0)
  end
  else begin
    let c, before = find_child heap node (count - 1) in
    let keep = List.filteri (fun i _ -> i < c) (shared_children heap node) in
    let partial =
      take_node heap ~height:(height - 1)
        (Pmem.Word.to_ptr (child heap node c))
        (count - before)
    in
    let children =
      keep
      @
      match partial with
      | None -> []
      | Some (n, h) ->
          [ (fst (lift heap ~from_height:h ~to_height:(height - 1) (n, true)), true) ]
    in
    match children with
    | [] -> None
    | [ (only, owned) ] ->
        (* collapse singleton chain *)
        if owned then Some (only, height - 1)
        else begin
          Pmalloc.Heap.retain heap only;
          Some (only, height - 1)
        end
    | many -> Some (make_interior heap ~height many, height)
  end

(* Drop the first [count] elements of a node. *)
let rec drop_node heap ~height node count =
  let total = node_size heap ~height node in
  if count >= total then None
  else if count = 0 then begin
    Pmalloc.Heap.retain heap node;
    Some (node, height)
  end
  else if height = 0 then begin
    let used = Pmalloc.Allocator.used_of (Pmalloc.Heap.allocator heap) node in
    let values =
      List.init (used - count) (fun i -> (Node.get heap node (count + i), false))
    in
    Some (make_leaf heap values, 0)
  end
  else begin
    let c, before = find_child heap node count in
    let keep = List.filteri (fun i _ -> i > c) (shared_children heap node) in
    let partial =
      drop_node heap ~height:(height - 1)
        (Pmem.Word.to_ptr (child heap node c))
        (count - before)
    in
    let children =
      (match partial with
      | None -> []
      | Some (n, h) ->
          [ (fst (lift heap ~from_height:h ~to_height:(height - 1) (n, true)), true) ])
      @ keep
    in
    match children with
    | [] -> None
    | [ (only, owned) ] ->
        if owned then Some (only, height - 1)
        else begin
          Pmalloc.Heap.retain heap only;
          Some (only, height - 1)
        end
    | many -> Some (make_interior heap ~height many, height)
  end

(* [slice heap v ~pos ~len] is the subsequence [pos, pos+len); owned
   result, [v] untouched. *)
let slice heap v ~pos ~len =
  let n = size heap v in
  if pos < 0 || len < 0 || pos + len > n then
    invalid_arg
      (Printf.sprintf "Rrb.slice: [%d, %d+%d) out of bounds (size %d)" pos pos
         len n);
  if len = 0 then create heap
  else begin
    let dropped =
      drop_node heap ~height:(height_of heap v)
        (Pmem.Word.to_ptr (root_of heap v))
        pos
    in
    match dropped with
    | None -> create heap
    | Some (node, h) -> (
        let taken = take_node heap ~height:h node len in
        Pmalloc.Heap.release heap node;
        match taken with
        | None -> create heap
        | Some (node', h') ->
            make_desc heap ~size:len ~height:h' ~root:(Pmem.Word.of_ptr node')
              ~root_owned:true)
  end
