lib/pfds/kv.mli: Pmalloc Pmem
