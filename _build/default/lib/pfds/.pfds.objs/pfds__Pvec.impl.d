lib/pfds/pvec.ml: List Node Pmalloc Pmem Printf
