lib/pfds/pheap.ml: List Node Pmalloc Pmem
