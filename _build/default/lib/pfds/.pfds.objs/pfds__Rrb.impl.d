lib/pfds/rrb.ml: List Node Pmalloc Pmem Printf
