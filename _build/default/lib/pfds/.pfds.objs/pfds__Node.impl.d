lib/pfds/node.ml: Pmalloc Pmem
