lib/pfds/pvec.mli: Pmalloc Pmem
