lib/pfds/champ.ml: Kv Node Option Pmem
