lib/pfds/pstack.mli: Pmalloc Pmem
