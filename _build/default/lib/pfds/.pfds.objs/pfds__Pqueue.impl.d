lib/pfds/pqueue.ml: List Node Pmem Pstack
