lib/pfds/champ.mli: Kv Pmalloc Pmem
