lib/pfds/kv.ml: Bytes Char Int Pmalloc Pmem String
