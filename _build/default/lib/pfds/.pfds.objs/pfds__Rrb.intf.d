lib/pfds/rrb.mli: Pmalloc Pmem
