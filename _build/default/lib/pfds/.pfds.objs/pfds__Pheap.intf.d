lib/pfds/pheap.mli: Pmalloc Pmem
