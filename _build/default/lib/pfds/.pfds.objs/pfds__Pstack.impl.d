lib/pfds/pstack.ml: List Node Pmem
