lib/pfds/pqueue.mli: Pmalloc Pmem
