(** Helpers for building immutable tree nodes in persistent memory.

    All MOD updates are out-of-place: a node is allocated, its fields are
    stored (writes to newly allocated PM only), and [finish] launches
    weakly-ordered clwb writebacks for its cachelines.  No fences here --
    the single ordering point lives in Commit.

    Reference-count discipline: a freshly allocated block carries one
    owned reference that the builder hands to whoever stores the pointer.
    Copying an {e existing} pointer word into a new node must [set_shared]
    it so the count reflects the extra parent. *)

let alloc heap ~words = Pmalloc.Heap.alloc heap ~kind:Pmalloc.Block.Scanned ~words
let get heap node i = Pmalloc.Heap.load heap (node + i)

(* Store an owned word (fresh allocation or scalar): no count change. *)
let set heap node i w = Pmalloc.Heap.store heap (node + i) w

(* Store a shared word: if it points to a live block, that block gains a
   parent. *)
let set_shared heap node i w =
  if Pmem.Word.is_ptr w && not (Pmem.Word.is_null w) then
    Pmalloc.Heap.retain heap (Pmem.Word.to_ptr w);
  Pmalloc.Heap.store heap (node + i) w

(* Copy [len] words from an existing node into a new one, retaining every
   pointer copied. *)
let blit_shared heap ~src ~soff ~dst ~doff ~len =
  for i = 0 to len - 1 do
    set_shared heap dst (doff + i) (get heap src (soff + i))
  done

let finish heap node = Pmalloc.Heap.flush_block heap node

(* Retain a word that is about to outlive the node it was read from. *)
let share heap w =
  if Pmem.Word.is_ptr w && not (Pmem.Word.is_null w) then
    Pmalloc.Heap.retain heap (Pmem.Word.to_ptr w);
  w
