(** Synthetic scale-free graph + breadth-first search (the paper's bfs
    workload).

    The paper runs BFS over the Flickr crawl (0.82 M nodes, 9.84 M edges)
    using a {e recoverable queue} for the frontier; the graph itself is
    not stored durably but rebuilt per run.  We have no Flickr dataset, so
    the graph is generated with the R-MAT recursive-matrix model
    (a=0.57, b=c=0.19), which reproduces the skewed degree distribution
    that shapes the frontier queue's behaviour.  Scale is a parameter. *)

type t = { n : int; adj : int array array }

let rmat ~n ~edges ~seed =
  let rng = Random.State.make [| seed |] in
  let bits =
    let rec go b = if 1 lsl b >= n then b else go (b + 1) in
    go 1
  in
  let deg = Array.make n 0 in
  let src = Array.make edges 0 in
  let dst = Array.make edges 0 in
  let a = 0.57 and b = 0.19 and c = 0.19 in
  for e = 0 to edges - 1 do
    let u = ref 0 and v = ref 0 in
    for _ = 1 to bits do
      let r = Random.State.float rng 1.0 in
      let du, dv =
        if r < a then (0, 0)
        else if r < a +. b then (0, 1)
        else if r < a +. b +. c then (1, 0)
        else (1, 1)
      in
      u := (!u lsl 1) lor du;
      v := (!v lsl 1) lor dv
    done;
    let u = !u mod n and v = !v mod n in
    src.(e) <- u;
    dst.(e) <- v;
    deg.(u) <- deg.(u) + 1
  done;
  let adj = Array.init n (fun i -> Array.make deg.(i) 0) in
  let fill = Array.make n 0 in
  for e = 0 to edges - 1 do
    let u = src.(e) in
    adj.(u).(fill.(u)) <- dst.(e);
    fill.(u) <- fill.(u) + 1
  done;
  { n; adj }

let out_degree g v = Array.length g.adj.(v)

(* Pick a source with non-trivial out-degree so the search goes somewhere. *)
let good_source g =
  let best = ref 0 in
  for v = 0 to g.n - 1 do
    if out_degree g v > out_degree g !best then best := v
  done;
  !best

(* BFS with the frontier in a recoverable queue (the durable state) and a
   volatile visited bitmap, as in the paper.  Returns the number of nodes
   reached. *)
let bfs_mod heap g ~src =
  let q = Mod_core.Dqueue.open_or_create heap ~slot:Micro.ds_slot in
  let visited = Bytes.make g.n '\000' in
  Bytes.set visited src '\001';
  Mod_core.Dqueue.enqueue q (Pmem.Word.of_int src);
  let count = ref 1 in
  let rec loop () =
    match Mod_core.Dqueue.dequeue q with
    | None -> ()
    | Some w ->
        let v = Pmem.Word.to_int w in
        Array.iter
          (fun u ->
            if Bytes.get visited u = '\000' then begin
              Bytes.set visited u '\001';
              incr count;
              Mod_core.Dqueue.enqueue q (Pmem.Word.of_int u)
            end)
          g.adj.(v);
        loop ()
  in
  loop ();
  !count

let bfs_pmdk ctx g ~src =
  let tx = Backend.tx ctx in
  let desc =
    Pmstm.Tx.run tx (fun () ->
        let desc = Pmstm.Pm_queue.create tx in
        Pmstm.Tx.add tx ~off:Micro.ds_slot ~words:1;
        Pmstm.Tx.store tx Micro.ds_slot (Pmem.Word.of_ptr desc);
        desc)
  in
  let visited = Bytes.make g.n '\000' in
  Bytes.set visited src '\001';
  Pmstm.Tx.run tx (fun () ->
      Pmstm.Pm_queue.enqueue tx desc (Pmem.Word.of_int src));
  let count = ref 1 in
  let rec loop () =
    let head =
      Pmstm.Tx.run tx (fun () -> Pmstm.Pm_queue.dequeue tx desc)
    in
    match head with
    | None -> ()
    | Some w ->
        let v = Pmem.Word.to_int w in
        Array.iter
          (fun u ->
            if Bytes.get visited u = '\000' then begin
              Bytes.set visited u '\001';
              incr count;
              Pmstm.Tx.run tx (fun () ->
                  Pmstm.Pm_queue.enqueue tx desc (Pmem.Word.of_int u))
            end)
          g.adj.(v);
        loop ()
  in
  loop ();
  !count

(* The bfs workload: build the graph (volatile, unmeasured), then run the
   queue-driven search on durable state. *)
let run ctx ~nodes ~edges =
  let g = rmat ~n:nodes ~edges ~seed:11 in
  let src = good_source g in
  Backend.start_measuring ctx;
  let reached =
    match Backend.kind ctx with
    | Backend.Mod -> bfs_mod (Backend.heap ctx) g ~src
    | Backend.Pmdk14 | Backend.Pmdk15 -> bfs_pmdk ctx g ~src
  in
  ignore (reached : int)
