lib/workloads/micro.ml: Backend Codecs Mod_core Pfds Pmem Pmstm Random
