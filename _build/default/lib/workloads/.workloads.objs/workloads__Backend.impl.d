lib/workloads/backend.ml: Pmalloc Pmem Pmstm Random
