lib/workloads/memcached.ml: Backend Codecs Micro Mod_core Pfds Pmem Pmstm Printf Random
