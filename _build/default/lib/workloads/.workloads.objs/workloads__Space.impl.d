lib/workloads/space.ml: Backend List Micro Mod_core Pmalloc Pmem Pmstm
