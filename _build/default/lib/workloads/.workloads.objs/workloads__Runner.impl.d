lib/workloads/runner.ml: Backend Graph Memcached Micro Pmalloc Pmem Printf Vacation
