lib/workloads/codecs.ml: Buffer Int Pfds Printf Random String
