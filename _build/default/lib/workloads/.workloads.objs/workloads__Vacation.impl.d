lib/workloads/vacation.ml: Array Backend Micro Mod_core Option Pfds Pmalloc Pmem Pmstm Random
