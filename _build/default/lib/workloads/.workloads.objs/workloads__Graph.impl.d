lib/workloads/graph.ml: Array Backend Bytes Micro Mod_core Pmem Pmstm Random
