lib/workloads/ablation.ml: Backend Micro Mod_core Pmalloc Pmem Random
