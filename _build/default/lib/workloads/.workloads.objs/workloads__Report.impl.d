lib/workloads/report.ml: Buffer Float List Printf String
