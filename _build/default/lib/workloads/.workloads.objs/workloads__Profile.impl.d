lib/workloads/profile.ml: Backend List Micro Pmem Random
