(** Memory-consumption study (Table 3): the ratio of memory consumed by a
    datastructure holding 2N elements to one holding N elements, for the
    MOD and PMDK implementations of each structure.

    The paper's N is 1 million; N is a parameter here.  "Memory consumed"
    is the live footprint reported by the allocator (headers included)
    after building the structure, with per-update shadow garbage already
    reclaimed by CommitSingle -- plus the per-update shadow overhead
    reported separately, which is the paper's "0.00002-0.00004x extra
    memory per update" claim. *)

type row = {
  structure : string;
  backend : Backend.kind;
  words_at_n : int;
  words_at_2n : int;
  ratio : float;
}

let live ctx = Pmalloc.Allocator.live_words (Pmalloc.Heap.allocator (Backend.heap ctx))

(* Build to N elements, snapshot, continue to 2N, snapshot.  The footprint
   is measured relative to the post-create baseline so backend machinery
   (the PMDK undo log block) is not charged to the datastructure. *)
let grow structure backend ~n ~insert ~setup =
  let ctx = Backend.create ~capacity_words:(1 lsl 22) backend in
  let base =
    match backend with
    | Backend.Mod -> 0
    | Backend.Pmdk14 | Backend.Pmdk15 ->
        ignore (Backend.tx ctx : Pmstm.Tx.t);
        live ctx
  in
  let inst = setup ctx in
  for i = 1 to n do
    insert ctx inst i
  done;
  let words_at_n = live ctx - base in
  for i = n + 1 to 2 * n do
    insert ctx inst i
  done;
  let words_at_2n = live ctx - base in
  {
    structure;
    backend;
    words_at_n;
    words_at_2n;
    ratio = float_of_int words_at_2n /. float_of_int (max 1 words_at_n);
  }

let map_row backend ~n =
  grow "map" backend ~n
    ~setup:(fun ctx -> Micro.map_setup ctx ~size:(2 * n))
    ~insert:(fun ctx inst i -> Micro.map_insert ctx inst i i)

let set_row backend ~n =
  grow "set" backend ~n
    ~setup:(fun ctx -> Micro.set_setup ctx ~size:(2 * n))
    ~insert:(fun ctx inst i -> Micro.set_add ctx inst i)

let stack_row backend ~n =
  grow "stack" backend ~n
    ~setup:(fun ctx -> Micro.stack_setup ctx)
    ~insert:(fun ctx inst i -> Micro.stack_push ctx inst i)

let queue_row backend ~n =
  grow "queue" backend ~n
    ~setup:(fun ctx -> Micro.queue_setup ctx)
    ~insert:(fun ctx inst i -> Micro.queue_push ctx inst i)

let vector_row backend ~n =
  grow "vector" backend ~n
    ~setup:(fun ctx -> Micro.vector_setup ctx ~size:1)
    ~insert:(fun ctx inst i ->
      match inst with
      | Micro.Mvec v -> Mod_core.Dvec.push_back v (Pmem.Word.of_int i)
      | Micro.Pvec desc ->
          let tx = Backend.tx ctx in
          Pmstm.Tx.run tx (fun () ->
              Pmstm.Pm_array.push_back tx desc (Pmem.Word.of_int i)))

(* Per-update shadow overhead: extra words a single insert allocates
   transiently, relative to the structure's size (the <0.01% claim). *)
let shadow_overhead ~n =
  let ctx = Backend.create ~capacity_words:(1 lsl 22) Backend.Mod in
  let inst = Micro.map_setup ctx ~size:(2 * n) in
  for i = 1 to n do
    Micro.map_insert ctx inst i i
  done;
  let before = live ctx in
  let alloc = Pmalloc.Heap.allocator (Backend.heap ctx) in
  let hw_before = Pmalloc.Allocator.high_water_words alloc in
  Micro.map_insert ctx inst (n + 1) 0;
  let hw_after = Pmalloc.Allocator.high_water_words alloc in
  let transient = max (hw_after - hw_before) 0 in
  (transient, before)

let table3 ?(n = 10_000) () =
  List.concat_map
    (fun backend ->
      [ map_row backend ~n; set_row backend ~n; stack_row backend ~n;
        queue_row backend ~n; vector_row backend ~n ])
    [ Backend.Mod; Backend.Pmdk15 ]
