(** The six microbenchmark workloads of Table 2, each runnable on the MOD
    and PMDK backends.

    Every workload follows the paper's harness: set up and prefill the
    datastructure, reset the measurement clock, then run [ops] iterations
    of the operation mix (the paper runs 1 million; the scale here is a
    parameter).  Lookups never flush or fence on either backend
    (Section 6.4), so only update operations are wrapped in PM-STM
    transactions on the PMDK backends. *)

module Mod_map = Mod_core.Dmap.Make (Pfds.Kv.Int) (Codecs.Val32)
module Mod_set = Mod_core.Dset.Make (Pfds.Kv.Int)
module Pm_map = Pmstm.Pm_hashmap.Make (Pfds.Kv.Int) (Codecs.Val32)
module Pm_set = Pmstm.Pm_hashmap.Make (Pfds.Kv.Int) (Pfds.Kv.Unit)

let ds_slot = 0

(* -- map ------------------------------------------------------------------ *)

type map_instance =
  | Mmap of Mod_map.t
  | Pmap of int (* descriptor *)

let map_setup ctx ~size =
  match Backend.kind ctx with
  | Backend.Mod -> Mmap (Mod_map.open_or_create (Backend.heap ctx) ~slot:ds_slot)
  | Backend.Pmdk14 | Backend.Pmdk15 ->
      let tx = Backend.tx ctx in
      Pmstm.Tx.run tx (fun () ->
          let desc = Pm_map.create tx ~nbuckets:(max 64 size) in
          Pmstm.Tx.add tx ~off:ds_slot ~words:1;
          Pmstm.Tx.store tx ds_slot (Pmem.Word.of_ptr desc);
          Pmap desc)

let map_insert ctx inst k v =
  match inst with
  | Mmap m -> Mod_map.insert m k v
  | Pmap desc ->
      let tx = Backend.tx ctx in
      Pmstm.Tx.run tx (fun () -> ignore (Pm_map.insert tx desc k v : bool))

let map_lookup ctx inst k =
  match inst with
  | Mmap m -> ignore (Mod_map.find m k : int option)
  | Pmap desc -> ignore (Pm_map.find (Backend.heap ctx) desc k : int option)

let map_run ctx ~ops ~size =
  let inst = map_setup ctx ~size in
  let rng = Backend.rng ctx in
  for _ = 1 to size / 2 do
    map_insert ctx inst (Random.State.int rng size) (Random.State.int rng 1000000)
  done;
  Backend.start_measuring ctx;
  for _ = 1 to ops do
    Backend.op_pause ctx;
    let k = Random.State.int rng size in
    if Random.State.bool rng then
      map_insert ctx inst k (Random.State.int rng 1000000)
    else map_lookup ctx inst k
  done

(* -- set ------------------------------------------------------------------ *)

type set_instance = Mset of Mod_set.t | Pset of int

let set_setup ctx ~size =
  match Backend.kind ctx with
  | Backend.Mod -> Mset (Mod_set.open_or_create (Backend.heap ctx) ~slot:ds_slot)
  | Backend.Pmdk14 | Backend.Pmdk15 ->
      let tx = Backend.tx ctx in
      Pmstm.Tx.run tx (fun () ->
          let desc = Pm_set.create tx ~nbuckets:(max 64 size) in
          Pmstm.Tx.add tx ~off:ds_slot ~words:1;
          Pmstm.Tx.store tx ds_slot (Pmem.Word.of_ptr desc);
          Pset desc)

let set_add ctx inst k =
  match inst with
  | Mset s -> Mod_set.add s k
  | Pset desc ->
      let tx = Backend.tx ctx in
      Pmstm.Tx.run tx (fun () -> ignore (Pm_set.insert tx desc k () : bool))

let set_member ctx inst k =
  match inst with
  | Mset s -> ignore (Mod_set.mem s k : bool)
  | Pset desc -> ignore (Pm_set.mem (Backend.heap ctx) desc k : bool)

let set_run ctx ~ops ~size =
  let inst = set_setup ctx ~size in
  let rng = Backend.rng ctx in
  for _ = 1 to size / 2 do
    set_add ctx inst (Random.State.int rng size)
  done;
  Backend.start_measuring ctx;
  for _ = 1 to ops do
    Backend.op_pause ctx;
    let k = Random.State.int rng size in
    if Random.State.bool rng then set_add ctx inst k else set_member ctx inst k
  done

(* -- stack ---------------------------------------------------------------- *)

type stack_instance = Mstack of Mod_core.Dstack.t | Pstack of int

let stack_setup ctx =
  match Backend.kind ctx with
  | Backend.Mod ->
      Mstack (Mod_core.Dstack.open_or_create (Backend.heap ctx) ~slot:ds_slot)
  | Backend.Pmdk14 | Backend.Pmdk15 ->
      let tx = Backend.tx ctx in
      Pmstm.Tx.run tx (fun () ->
          let desc = Pmstm.Pm_stack.create tx in
          Pmstm.Tx.add tx ~off:ds_slot ~words:1;
          Pmstm.Tx.store tx ds_slot (Pmem.Word.of_ptr desc);
          Pstack desc)

let stack_push ctx inst v =
  match inst with
  | Mstack s -> Mod_core.Dstack.push s (Pmem.Word.of_int v)
  | Pstack desc ->
      let tx = Backend.tx ctx in
      Pmstm.Tx.run tx (fun () ->
          Pmstm.Pm_stack.push tx desc (Pmem.Word.of_int v))

let stack_pop ctx inst =
  match inst with
  | Mstack s -> ignore (Mod_core.Dstack.pop s : Pmem.Word.t option)
  | Pstack desc ->
      let tx = Backend.tx ctx in
      Pmstm.Tx.run tx (fun () ->
          ignore (Pmstm.Pm_stack.pop tx desc : Pmem.Word.t option))

let stack_is_empty ctx inst =
  match inst with
  | Mstack s -> Mod_core.Dstack.is_empty s
  | Pstack desc -> Pmstm.Pm_stack.is_empty (Backend.heap ctx) desc

let stack_run ctx ~ops ~size =
  let inst = stack_setup ctx in
  let rng = Backend.rng ctx in
  for i = 1 to size / 2 do
    stack_push ctx inst i
  done;
  Backend.start_measuring ctx;
  for _ = 1 to ops do
    Backend.op_pause ctx;
    if stack_is_empty ctx inst || Random.State.bool rng then
      stack_push ctx inst (Random.State.int rng 1000000)
    else stack_pop ctx inst
  done

(* -- queue ---------------------------------------------------------------- *)

type queue_instance = Mqueue of Mod_core.Dqueue.t | Pqueue of int

let queue_setup ctx =
  match Backend.kind ctx with
  | Backend.Mod ->
      Mqueue (Mod_core.Dqueue.open_or_create (Backend.heap ctx) ~slot:ds_slot)
  | Backend.Pmdk14 | Backend.Pmdk15 ->
      let tx = Backend.tx ctx in
      Pmstm.Tx.run tx (fun () ->
          let desc = Pmstm.Pm_queue.create tx in
          Pmstm.Tx.add tx ~off:ds_slot ~words:1;
          Pmstm.Tx.store tx ds_slot (Pmem.Word.of_ptr desc);
          Pqueue desc)

let queue_push ctx inst v =
  match inst with
  | Mqueue q -> Mod_core.Dqueue.enqueue q (Pmem.Word.of_int v)
  | Pqueue desc ->
      let tx = Backend.tx ctx in
      Pmstm.Tx.run tx (fun () ->
          Pmstm.Pm_queue.enqueue tx desc (Pmem.Word.of_int v))

let queue_pop ctx inst =
  match inst with
  | Mqueue q -> ignore (Mod_core.Dqueue.dequeue q : Pmem.Word.t option)
  | Pqueue desc ->
      let tx = Backend.tx ctx in
      Pmstm.Tx.run tx (fun () ->
          ignore (Pmstm.Pm_queue.dequeue tx desc : Pmem.Word.t option))

let queue_is_empty ctx inst =
  match inst with
  | Mqueue q -> Mod_core.Dqueue.is_empty q
  | Pqueue desc -> Pmstm.Pm_queue.is_empty (Backend.heap ctx) desc

let queue_run ctx ~ops ~size =
  let inst = queue_setup ctx in
  let rng = Backend.rng ctx in
  for i = 1 to size / 2 do
    queue_push ctx inst i
  done;
  Backend.start_measuring ctx;
  for _ = 1 to ops do
    Backend.op_pause ctx;
    if queue_is_empty ctx inst || Random.State.bool rng then
      queue_push ctx inst (Random.State.int rng 1000000)
    else queue_pop ctx inst
  done

(* -- vector --------------------------------------------------------------- *)

type vector_instance = Mvec of Mod_core.Dvec.t | Pvec of int

let vector_setup ctx ~size =
  match Backend.kind ctx with
  | Backend.Mod ->
      let v = Mod_core.Dvec.open_or_create (Backend.heap ctx) ~slot:ds_slot in
      for i = 1 to size do
        Mod_core.Dvec.push_back v (Pmem.Word.of_int i)
      done;
      Mvec v
  | Backend.Pmdk14 | Backend.Pmdk15 ->
      let tx = Backend.tx ctx in
      let desc =
        Pmstm.Tx.run tx (fun () ->
            let desc = Pmstm.Pm_array.create tx ~capacity:(max 16 size) in
            Pmstm.Tx.add tx ~off:ds_slot ~words:1;
            Pmstm.Tx.store tx ds_slot (Pmem.Word.of_ptr desc);
            desc)
      in
      for i = 1 to size do
        Pmstm.Tx.run tx (fun () ->
            Pmstm.Pm_array.push_back tx desc (Pmem.Word.of_int i))
      done;
      Pvec desc

let vector_write ctx inst i v =
  match inst with
  | Mvec vec -> Mod_core.Dvec.set vec i (Pmem.Word.of_int v)
  | Pvec desc ->
      let tx = Backend.tx ctx in
      Pmstm.Tx.run tx (fun () -> Pmstm.Pm_array.set tx desc i (Pmem.Word.of_int v))

let vector_read ctx inst i =
  match inst with
  | Mvec vec -> ignore (Mod_core.Dvec.get vec i : Pmem.Word.t)
  | Pvec desc ->
      ignore (Pmstm.Pm_array.get (Backend.heap ctx) desc i : Pmem.Word.t)

let vector_swap ctx inst i j =
  match inst with
  | Mvec vec -> Mod_core.Dvec.swap vec i j
  | Pvec desc ->
      let tx = Backend.tx ctx in
      Pmstm.Tx.run tx (fun () -> Pmstm.Pm_array.swap tx desc i j)

let vector_run ctx ~ops ~size =
  let inst = vector_setup ctx ~size in
  let rng = Backend.rng ctx in
  Backend.start_measuring ctx;
  for _ = 1 to ops do
    Backend.op_pause ctx;
    let i = Random.State.int rng size in
    if Random.State.bool rng then
      vector_write ctx inst i (Random.State.int rng 1000000)
    else vector_read ctx inst i
  done

let vec_swap_run ctx ~ops ~size =
  let inst = vector_setup ctx ~size in
  let rng = Backend.rng ctx in
  Backend.start_measuring ctx;
  for _ = 1 to ops do
    Backend.op_pause ctx;
    let i = Random.State.int rng size in
    let j = Random.State.int rng size in
    if i <> j then vector_swap ctx inst i j
  done
