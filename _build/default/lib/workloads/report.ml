(** Plain-text rendering helpers for the benchmark harness: fixed-width
    tables, horizontal stacked bars, and aligned scatter listings, so each
    figure of the paper has a legible terminal counterpart. *)

let hrule width = String.make width '-'

let pad s width =
  if String.length s >= width then s else s ^ String.make (width - String.length s) ' '

let rpad s width =
  if String.length s >= width then s
  else String.make (width - String.length s) ' ' ^ s

(* A stacked horizontal bar: each segment is (label char, fraction). *)
let stacked_bar ?(width = 50) segments =
  let buf = Buffer.create width in
  let total_cells = ref 0 in
  let n = List.length segments in
  List.iteri
    (fun i (ch, frac) ->
      let cells =
        if i = n - 1 then max 0 (width - !total_cells)
        else
          let c = int_of_float (Float.round (frac *. float_of_int width)) in
          min c (width - !total_cells)
      in
      total_cells := !total_cells + cells;
      Buffer.add_string buf (String.make cells ch))
    segments;
  Buffer.contents buf

(* A plain proportional bar. *)
let bar ?(width = 40) ~max_value value =
  if max_value <= 0.0 then ""
  else
    let cells =
      int_of_float (Float.round (value /. max_value *. float_of_int width))
    in
    String.make (max 0 (min width cells)) '#'

let section title =
  Printf.printf "\n%s\n%s\n%s\n" (hrule 78) title (hrule 78)

let subsection title = Printf.printf "\n-- %s\n" title

let row cells widths =
  let line =
    String.concat "  " (List.map2 (fun c w -> pad c w) cells widths)
  in
  print_endline line

let row_r cells widths =
  (* first cell left-aligned, the rest right-aligned: numeric tables *)
  match (cells, widths) with
  | c0 :: crest, w0 :: wrest ->
      let line =
        String.concat "  "
          (pad c0 w0 :: List.map2 (fun c w -> rpad c w) crest wrest)
      in
      print_endline line
  | _ -> ()

let fraction_pct f = Printf.sprintf "%5.1f%%" (100.0 *. f)
let ns_ms ns = Printf.sprintf "%8.2f ms" (ns /. 1e6)
let f2 v = Printf.sprintf "%.2f" v
let f1 v = Printf.sprintf "%.1f" v
