(** Per-operation flush/fence profiling (Figure 10 and the Section 3
    fence analysis).

    For each operation type the paper plots, run a fresh instance,
    prefill it, then measure [samples] operations of exactly that type
    and average the flush and fence counts. *)

type point = {
  label : string;
  backend : Backend.kind;
  flushes : float;
  fences : float;
}

let measure ctx ~samples op =
  let stats = Backend.stats ctx in
  let before = Pmem.Stats.snapshot stats in
  for i = 1 to samples do
    op i
  done;
  let d = Pmem.Stats.diff ~before ~after:(Pmem.Stats.snapshot stats) in
  ( float_of_int d.Pmem.Stats.s_clwbs /. float_of_int samples,
    float_of_int d.Pmem.Stats.s_fences /. float_of_int samples )

let point label backend (flushes, fences) = { label; backend; flushes; fences }

let map_insert backend ~samples ~size =
  let ctx = Backend.create backend in
  let inst = Micro.map_setup ctx ~size in
  let rng = Backend.rng ctx in
  for _ = 1 to size do
    Micro.map_insert ctx inst (Random.State.int rng size) 1
  done;
  point "map-insert" backend
    (measure ctx ~samples (fun _ ->
         Micro.map_insert ctx inst (Random.State.int rng size) 2))

let set_insert backend ~samples ~size =
  let ctx = Backend.create backend in
  let inst = Micro.set_setup ctx ~size in
  let rng = Backend.rng ctx in
  for _ = 1 to size do
    Micro.set_add ctx inst (Random.State.int rng size)
  done;
  point "set-insert" backend
    (measure ctx ~samples (fun _ ->
         Micro.set_add ctx inst (Random.State.int rng size)))

let queue_ops backend ~samples ~size =
  let ctx = Backend.create backend in
  let inst = Micro.queue_setup ctx in
  for i = 1 to size + samples do
    Micro.queue_push ctx inst i
  done;
  let push =
    point "queue-push" backend
      (measure ctx ~samples (fun i -> Micro.queue_push ctx inst i))
  in
  let pop =
    point "queue-pop" backend
      (measure ctx ~samples (fun _ -> Micro.queue_pop ctx inst))
  in
  [ push; pop ]

let stack_ops backend ~samples ~size =
  let ctx = Backend.create backend in
  let inst = Micro.stack_setup ctx in
  for i = 1 to size + samples do
    Micro.stack_push ctx inst i
  done;
  let push =
    point "stack-push" backend
      (measure ctx ~samples (fun i -> Micro.stack_push ctx inst i))
  in
  let pop =
    point "stack-pop" backend
      (measure ctx ~samples (fun _ -> Micro.stack_pop ctx inst))
  in
  [ push; pop ]

let vector_ops backend ~samples ~size =
  let ctx = Backend.create backend in
  let inst = Micro.vector_setup ctx ~size in
  let rng = Backend.rng ctx in
  let write =
    point "vector-write" backend
      (measure ctx ~samples (fun i ->
           Micro.vector_write ctx inst (Random.State.int rng size) i))
  in
  let swap =
    point "vec-swap" backend
      (measure ctx ~samples (fun _ ->
           let i = Random.State.int rng size in
           let j = (i + 1 + Random.State.int rng (size - 1)) mod size in
           Micro.vector_swap ctx inst i j))
  in
  [ write; swap ]

let all ?(samples = 500) ?(size = 10_000) () =
  List.concat_map
    (fun backend ->
      [ map_insert backend ~samples ~size; set_insert backend ~samples ~size ]
      @ queue_ops backend ~samples ~size
      @ stack_ops backend ~samples ~size
      @ vector_ops backend ~samples ~size)
    [ Backend.Pmdk15; Backend.Mod ]
