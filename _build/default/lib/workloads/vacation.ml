(** The vacation workload (Table 2): a travel-reservation system with four
    recoverable maps -- cars, flights, rooms, customers -- all members of
    one manager object.

    A reservation touches an item table {e and} the customer table in one
    failure-atomic section.  On MOD this is exactly the CommitSiblings
    case the paper used when porting vacation (Section 6.2): the manager
    parent object is shadow-copied to point at the updated maps and
    swapped in with a single fence + one atomic write.  On PMDK all
    updates run in one undo-logged transaction. *)

module Mod_tbl = Mod_core.Dmap.Make (Pfds.Kv.Int) (Pfds.Kv.Int)
module Pm_tbl = Pmstm.Pm_hashmap.Make (Pfds.Kv.Int) (Pfds.Kv.Int)

let manager_slot = Micro.ds_slot
let n_tables = 4
let cars = 0
let flights = 1
let rooms = 2
let customers = 3

(* Item payload: availability and price packed into one scalar. *)
let pack ~avail ~price = (avail * 10_000) + price
let avail_of v = v / 10_000
let price_of v = v mod 10_000

type instance = Mmgr | Pmgr of int array (* table descriptors *)

(* -- MOD: manager object + Composition interface ------------------------- *)

let mod_setup heap =
  let parent = Pfds.Node.alloc heap ~words:n_tables in
  for f = 0 to n_tables - 1 do
    Pfds.Node.set heap parent f (Mod_tbl.empty_version heap)
  done;
  Pfds.Node.finish heap parent;
  Mod_core.Commit.single heap ~slot:manager_slot (Pmem.Word.of_ptr parent)

let mod_field heap f =
  let parent = Pmem.Word.to_ptr (Pmalloc.Heap.root_get heap manager_slot) in
  Pfds.Node.get heap parent f

(* One FASE: pure updates on the named tables, then CommitSiblings. *)
let mod_commit heap fields =
  Mod_core.Commit.siblings heap ~slot:manager_slot fields

(* -- PMDK: four hashmaps under a parent block ----------------------------- *)

let pmdk_setup ctx ~relations =
  let tx = Backend.tx ctx in
  Pmstm.Tx.run tx (fun () ->
      let descs =
        Array.init n_tables (fun _ ->
            Pm_tbl.create tx ~nbuckets:(max 64 relations))
      in
      let parent = Pmstm.Tx.alloc tx ~kind:Pmalloc.Block.Scanned ~words:n_tables in
      Array.iteri
        (fun f d -> Pmstm.Tx.store_fresh tx (parent + f) (Pmem.Word.of_ptr d))
        descs;
      Pmstm.Tx.add tx ~off:manager_slot ~words:1;
      Pmstm.Tx.store tx manager_slot (Pmem.Word.of_ptr parent);
      Pmgr descs)

(* -- the operation mix ----------------------------------------------------- *)

let make_reservation ctx inst ~relations rng =
  let heap = Backend.heap ctx in
  let table = Random.State.int rng 3 in
  let item = Random.State.int rng relations in
  let cid = Random.State.int rng relations in
  match inst with
  | Mmgr -> (
      let tbl = mod_field heap table in
      match Mod_tbl.find_in heap tbl item with
      | Some v when avail_of v > 0 ->
          let tbl' =
            Mod_tbl.insert_pure heap tbl item
              (pack ~avail:(avail_of v - 1) ~price:(price_of v))
          in
          let cust = mod_field heap customers in
          let count =
            Option.value ~default:0 (Mod_tbl.find_in heap cust cid)
          in
          let cust' = Mod_tbl.insert_pure heap cust cid (count + 1) in
          mod_commit heap [ (table, tbl'); (customers, cust') ]
      | Some _ | None -> ())
  | Pmgr descs ->
      let tx = Backend.tx ctx in
      Pmstm.Tx.run tx (fun () ->
          match Pm_tbl.find heap descs.(table) item with
          | Some v when avail_of v > 0 ->
              ignore
                (Pm_tbl.insert tx descs.(table) item
                   (pack ~avail:(avail_of v - 1) ~price:(price_of v))
                  : bool);
              let count =
                Option.value ~default:0 (Pm_tbl.find heap descs.(customers) cid)
              in
              ignore (Pm_tbl.insert tx descs.(customers) cid (count + 1) : bool)
          | Some _ | None -> ())

let delete_customer ctx inst ~relations rng =
  let heap = Backend.heap ctx in
  let cid = Random.State.int rng relations in
  match inst with
  | Mmgr ->
      let cust = mod_field heap customers in
      let cust', removed = Mod_tbl.remove_pure heap cust cid in
      if removed then mod_commit heap [ (customers, cust') ]
  | Pmgr descs ->
      let tx = Backend.tx ctx in
      Pmstm.Tx.run tx (fun () ->
          ignore (Pm_tbl.remove tx descs.(customers) cid : bool))

let manage_tables ctx inst ~relations rng =
  let heap = Backend.heap ctx in
  let table = Random.State.int rng 3 in
  let item = Random.State.int rng relations in
  let price = 100 + Random.State.int rng 400 in
  let avail = 50 + Random.State.int rng 50 in
  match inst with
  | Mmgr ->
      let tbl = mod_field heap table in
      let tbl' = Mod_tbl.insert_pure heap tbl item (pack ~avail ~price) in
      mod_commit heap [ (table, tbl') ]
  | Pmgr descs ->
      let tx = Backend.tx ctx in
      Pmstm.Tx.run tx (fun () ->
          ignore (Pm_tbl.insert tx descs.(table) item (pack ~avail ~price) : bool))

let run ctx ~ops ~relations =
  let inst =
    match Backend.kind ctx with
    | Backend.Mod ->
        mod_setup (Backend.heap ctx);
        Mmgr
    | Backend.Pmdk14 | Backend.Pmdk15 -> pmdk_setup ctx ~relations
  in
  let rng = Backend.rng ctx in
  (* populate the three item tables *)
  for item = 0 to relations - 1 do
    let price = 100 + Random.State.int rng 400 in
    let avail = 10 + Random.State.int rng 90 in
    let payload = pack ~avail ~price in
    match inst with
    | Mmgr ->
        let heap = Backend.heap ctx in
        for table = 0 to 2 do
          let tbl' = Mod_tbl.insert_pure heap (mod_field heap table) item payload in
          mod_commit heap [ (table, tbl') ]
        done
    | Pmgr descs ->
        let tx = Backend.tx ctx in
        for table = 0 to 2 do
          Pmstm.Tx.run tx (fun () ->
              ignore (Pm_tbl.insert tx descs.(table) item payload : bool))
        done
  done;
  Backend.start_measuring ctx;
  for _ = 1 to ops do
    Backend.op_pause ctx;
    let dice = Random.State.int rng 100 in
    if dice < 80 then make_reservation ctx inst ~relations rng
    else if dice < 90 then delete_customer ctx inst ~relations rng
    else manage_tables ctx inst ~relations rng
  done
