(** Ablations of MOD's design choices (not in the paper; indexed in
    DESIGN.md).  Each isolates one ingredient of Functional Shadowing:

    (a) {b structural sharing} -- a naive shadow-paging vector that copies
        the whole array on every update, versus the tree-based MOD vector;
    (b) {b minimal ordering} -- MOD with a fence after every clwb,
        recreating the serialized-flush regime of Section 3;
    (c) {b eager reclamation} -- CommitSingle without reference-count
        reclamation, leaving superseded versions to recovery GC. *)

(* -- (a) naive shadow vector: full copy per update ------------------------ *)

module Naive_vec = struct
  (* Version layout: a [Raw] block of [size] scalar words.  Every update
     allocates and flushes a complete copy -- classic shadow paging with
     no sharing. *)

  let create heap ~size =
    let body = Pmalloc.Heap.alloc heap ~kind:Pmalloc.Block.Raw ~words:(max 1 size) in
    for i = 0 to size - 1 do
      Pmalloc.Heap.store heap (body + i) (Pmem.Word.of_int 0)
    done;
    Pmalloc.Heap.flush_block heap body;
    Pmem.Word.of_ptr body

  let get heap version i =
    Pmalloc.Heap.load heap (Pmem.Word.to_ptr version + i)

  let set heap version ~size i w =
    let src = Pmem.Word.to_ptr version in
    let dst = Pmalloc.Heap.alloc heap ~kind:Pmalloc.Block.Raw ~words:(max 1 size) in
    for s = 0 to size - 1 do
      Pmalloc.Heap.store heap (dst + s)
        (if s = i then w else Pmalloc.Heap.load heap (src + s))
    done;
    Pmalloc.Heap.flush_block heap dst;
    Pmem.Word.of_ptr dst
end

type result = {
  label : string;
  ops : int;
  ns_total : float;
  ns_flush : float;
  fences : int;
  flushes : int;
  high_water_words : int;
}

let collect label ctx ~ops =
  let s = Backend.stats ctx in
  {
    label;
    ops;
    ns_total = s.Pmem.Stats.now_ns;
    ns_flush = s.Pmem.Stats.ns_flush;
    fences = s.Pmem.Stats.fences;
    flushes = s.Pmem.Stats.clwbs;
    high_water_words =
      Pmalloc.Allocator.high_water_words (Pmalloc.Heap.allocator (Backend.heap ctx));
  }

(* MOD tree vector vs naive full-copy shadow vector, random writes. *)
let sharing ~ops ~size =
  let tree =
    let ctx = Backend.create Backend.Mod in
    let inst = Micro.vector_setup ctx ~size in
    let rng = Backend.rng ctx in
    Backend.start_measuring ctx;
    for _ = 1 to ops do
      Micro.vector_write ctx inst (Random.State.int rng size)
        (Random.State.int rng 1000)
    done;
    collect "MOD vector (structural sharing)" ctx ~ops
  in
  let naive =
    let ctx = Backend.create Backend.Mod in
    let heap = Backend.heap ctx in
    let slot = Micro.ds_slot in
    Mod_core.Commit.single heap ~slot (Naive_vec.create heap ~size);
    let rng = Backend.rng ctx in
    Backend.start_measuring ctx;
    for _ = 1 to ops do
      let version = Pmalloc.Heap.root_get heap slot in
      let shadow =
        Naive_vec.set heap version ~size (Random.State.int rng size)
          (Pmem.Word.of_int (Random.State.int rng 1000))
      in
      Mod_core.Commit.single heap ~slot shadow
    done;
    collect "naive shadow vector (full copy)" ctx ~ops
  in
  [ tree; naive ]

(* MOD map with overlapped flushes vs one fence per flush. *)
let ordering ~ops ~size =
  let run label ~fence_per_flush =
    let ctx = Backend.create Backend.Mod in
    Pmem.Region.set_fence_per_flush
      (Pmalloc.Heap.region (Backend.heap ctx))
      fence_per_flush;
    let inst = Micro.map_setup ctx ~size in
    let rng = Backend.rng ctx in
    for _ = 1 to size / 2 do
      Micro.map_insert ctx inst (Random.State.int rng size) 1
    done;
    Backend.start_measuring ctx;
    for _ = 1 to ops do
      Micro.map_insert ctx inst (Random.State.int rng size) 2
    done;
    collect label ctx ~ops
  in
  [
    run "MOD map (overlapped flushes)" ~fence_per_flush:false;
    run "MOD map (fence per flush)" ~fence_per_flush:true;
  ]

(* CommitSingle with and without reference-count reclamation. *)
let reclamation ~ops ~size =
  let run label ~reclaim =
    let ctx = Backend.create ~capacity_words:(1 lsl 22) Backend.Mod in
    let heap = Backend.heap ctx in
    let map = Micro.Mod_map.open_or_create heap ~slot:Micro.ds_slot in
    let rng = Backend.rng ctx in
    Backend.start_measuring ctx;
    for _ = 1 to ops do
      let k = Random.State.int rng size in
      let shadow =
        Micro.Mod_map.insert_pure heap (Mod_core.Handle.current map) k k
      in
      Mod_core.Commit.single ~reclaim heap ~slot:Micro.ds_slot shadow
    done;
    collect label ctx ~ops
  in
  [
    run "CommitSingle with reclamation" ~reclaim:true;
    run "CommitSingle without reclamation (leak until recovery)" ~reclaim:false;
  ]
