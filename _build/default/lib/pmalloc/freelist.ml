(** Segregated free lists for the persistent-memory allocator.

    The lists themselves are volatile (ordinary OCaml state): after a crash
    they are reconstructed by the recovery garbage collector from the gaps
    between reachable blocks, exactly as the paper's reclamation design
    permits (Section 5.3: only reachability needs to be durable).

    Bins hold [(body_offset, capacity)] pairs.  Capacities up to
    [exact_max] get an exact-fit bin each; larger blocks fall into
    power-of-two buckets that are searched first-fit and split. *)

let exact_max = 64
let buckets = 24 (* power-of-two classes above exact_max *)

type entry = { body : int; capacity : int }

type t = {
  exact : entry list array; (* index = capacity, 0..exact_max *)
  coarse : entry list array; (* index = log2 class *)
  mutable free_words : int;
}

let create () =
  {
    exact = Array.make (exact_max + 1) [];
    coarse = Array.make buckets [];
    free_words = 0;
  }

let clear t =
  Array.fill t.exact 0 (Array.length t.exact) [];
  Array.fill t.coarse 0 (Array.length t.coarse) [];
  t.free_words <- 0

let bucket_of capacity =
  let rec log2 n acc = if n <= exact_max then acc else log2 (n lsr 1) (acc + 1) in
  min (buckets - 1) (log2 capacity 0)

let insert t ~body ~capacity =
  if capacity >= Block.min_capacity then begin
    let e = { body; capacity } in
    if capacity <= exact_max then t.exact.(capacity) <- e :: t.exact.(capacity)
    else begin
      let b = bucket_of capacity in
      t.coarse.(b) <- e :: t.coarse.(b)
    end;
    t.free_words <- t.free_words + capacity
  end

let free_words t = t.free_words

(* Take a block of exactly [capacity] words if one is on an exact bin. *)
let take_exact t capacity =
  if capacity <= exact_max then
    match t.exact.(capacity) with
    | e :: rest ->
        t.exact.(capacity) <- rest;
        t.free_words <- t.free_words - capacity;
        Some e
    | [] -> None
  else None

(* First-fit search of the coarse buckets for a block of at least
   [capacity] words.  The found block is removed; the caller splits. *)
let take_at_least t capacity =
  let found = ref None in
  let b = ref (bucket_of capacity) in
  while !found = None && !b < buckets do
    let keep = ref [] in
    let rec scan = function
      | [] -> ()
      | e :: rest ->
          if !found = None && e.capacity >= capacity then begin
            found := Some e;
            keep := List.rev_append !keep rest
          end
          else begin
            keep := e :: !keep;
            scan rest
          end
    in
    let original = t.coarse.(!b) in
    scan original;
    (match !found with
    | Some e ->
        t.coarse.(!b) <- List.rev !keep;
        t.free_words <- t.free_words - e.capacity
    | None -> ());
    incr b
  done;
  (* Fall back to scavenging larger exact bins. *)
  if !found = None && capacity <= exact_max then begin
    let c = ref capacity in
    while !found = None && !c <= exact_max do
      (match t.exact.(!c) with
      | e :: rest ->
          t.exact.(!c) <- rest;
          t.free_words <- t.free_words - e.capacity;
          found := Some e
      | [] -> ());
      incr c
    done
  end;
  !found

let iter t fn =
  Array.iter (fun l -> List.iter fn l) t.exact;
  Array.iter (fun l -> List.iter fn l) t.coarse
