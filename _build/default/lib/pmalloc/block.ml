(** Persistent-heap block headers.

    Every heap block carries a two-word header immediately before its body:
    - word 0: physical capacity (in words, including the header), the block
      kind, and an allocated bit;
    - word 1: the number of body words the owner actually initialized (the
      scan limit for the recovery garbage collector).

    Pointers handed to clients address the {e body}; the header lives at
    [body - header_words].  [Scanned] blocks contain only tagged words
    ({!Pmem.Word}), so reachability can be computed generically; [Raw]
    blocks hold opaque payload (string blobs) that must never be
    interpreted as pointers. *)

type kind = Scanned | Raw

let header_words = 2
let min_capacity = header_words + 2

let kind_to_bit = function Scanned -> 0 | Raw -> 1
let kind_of_bit = function 0 -> Scanned | _ -> Raw

let encode_info ~capacity ~kind ~allocated =
  Pmem.Word.of_int
    ((capacity lsl 2) lor (kind_to_bit kind lsl 1) lor (if allocated then 1 else 0))

let decode_info w =
  let v = Pmem.Word.to_int w in
  (v lsr 2, kind_of_bit ((v lsr 1) land 1), v land 1 = 1)

let encode_used used = Pmem.Word.of_int used
let decode_used w = Pmem.Word.to_int w

let header_of_body body = body - header_words
let body_of_header header = header + header_words
