lib/pmalloc/allocator.ml: Block Freelist Hashtbl Pmem Printf
