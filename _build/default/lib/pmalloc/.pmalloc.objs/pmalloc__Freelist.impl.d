lib/pmalloc/freelist.ml: Array Block List
