lib/pmalloc/allocator.mli: Block Pmem
