lib/pmalloc/block.ml: Pmem
