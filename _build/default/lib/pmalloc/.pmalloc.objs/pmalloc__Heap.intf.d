lib/pmalloc/heap.mli: Allocator Block Pmem
