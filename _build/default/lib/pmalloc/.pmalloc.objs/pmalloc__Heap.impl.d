lib/pmalloc/heap.ml: Allocator Pmem Printf
