lib/pmalloc/recovery_gc.ml: Allocator Block Format Hashtbl Heap List Pmem
