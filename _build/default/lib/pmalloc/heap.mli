(** A persistent heap: simulated PM region + allocator + a durable root
    directory through which applications locate their recoverable
    datastructures across crashes (the paper's per-heap "root pointer",
    Section 5.1). *)

type t

val root_slots : int
(** Number of root-directory slots (word 0 .. root_slots-1 of the region). *)

val create : ?capacity_words:int -> ?trace:bool -> ?seed:int -> unit -> t
(** Fresh heap with all root slots durably null.  [trace] enables the
    Section 5.4 event trace; [seed] drives crash nondeterminism. *)

val region : t -> Pmem.Region.t
val allocator : t -> Allocator.t
val stats : t -> Pmem.Stats.t
val trace : t -> Pmem.Trace.t

val root_get : t -> int -> Pmem.Word.t
(** Read a root slot (a persistent pointer or null). *)

val root_set : t -> int -> Pmem.Word.t -> unit
(** The 8-byte atomic root update at the heart of Commit: one store plus a
    weakly-ordered flush; the flush is ordered by the {e next} fence
    (epoch persistency) -- losing it in a crash merely re-exposes the
    previous consistent version. *)

val alloc : t -> kind:Block.kind -> words:int -> int
(** Allocate a block; returns the body offset.  The fresh block carries
    one owned reference. *)

val free : t -> int -> unit
val release : t -> int -> unit
(** Drop a reference; at zero, recursively release children and free. *)

val retain : t -> int -> unit
val flush_block : t -> int -> unit
(** clwb every cacheline of a block (header + initialized body); no fence. *)

val load : t -> int -> Pmem.Word.t
val store : t -> int -> Pmem.Word.t -> unit
val clwb : t -> int -> unit
val clwb_range : t -> int -> int -> unit
val sfence : t -> unit
val crash : ?mode:Pmem.Region.crash_mode -> t -> unit
