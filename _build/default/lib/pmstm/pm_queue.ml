(** PMDK-style transactional FIFO queue: a linked list with head and tail
    pointers, updated in place.

    Layout: descriptor [head; tail]; node [value; next]. *)

let d_head = 0
let d_tail = 1

let create tx =
  let desc = Tx.alloc tx ~kind:Pmalloc.Block.Scanned ~words:2 in
  Tx.store_fresh tx (desc + d_head) Pmem.Word.null;
  Tx.store_fresh tx (desc + d_tail) Pmem.Word.null;
  desc

let head heap desc = Pmalloc.Heap.load heap (desc + d_head)
let tail heap desc = Pmalloc.Heap.load heap (desc + d_tail)
let is_empty heap desc = Pmem.Word.is_null (head heap desc)

let enqueue tx desc w =
  let heap = Tx.heap tx in
  let node = Tx.alloc tx ~kind:Pmalloc.Block.Scanned ~words:2 in
  Tx.store_fresh tx node w;
  Tx.store_fresh tx (node + 1) Pmem.Word.null;
  let t = tail heap desc in
  if Pmem.Word.is_null t then begin
    Tx.add tx ~off:(desc + d_head) ~words:2;
    Tx.store tx (desc + d_head) (Pmem.Word.of_ptr node);
    Tx.store tx (desc + d_tail) (Pmem.Word.of_ptr node)
  end
  else begin
    let tnode = Pmem.Word.to_ptr t in
    Tx.add tx ~off:(tnode + 1) ~words:1;
    Tx.store tx (tnode + 1) (Pmem.Word.of_ptr node);
    Tx.add tx ~off:(desc + d_tail) ~words:1;
    Tx.store tx (desc + d_tail) (Pmem.Word.of_ptr node)
  end

let dequeue tx desc =
  let heap = Tx.heap tx in
  let h = head heap desc in
  if Pmem.Word.is_null h then None
  else begin
    let node = Pmem.Word.to_ptr h in
    let v = Pmalloc.Heap.load heap node in
    let next = Pmalloc.Heap.load heap (node + 1) in
    if Pmem.Word.is_null next then begin
      Tx.add tx ~off:(desc + d_head) ~words:2;
      Tx.store tx (desc + d_head) Pmem.Word.null;
      Tx.store tx (desc + d_tail) Pmem.Word.null
    end
    else begin
      Tx.add tx ~off:(desc + d_head) ~words:1;
      Tx.store tx (desc + d_head) next
    end;
    Tx.free_on_commit tx node;
    Some v
  end

let iter heap desc fn =
  let rec walk w =
    if not (Pmem.Word.is_null w) then begin
      let node = Pmem.Word.to_ptr w in
      fn (Pmalloc.Heap.load heap node);
      walk (Pmalloc.Heap.load heap (node + 1))
    end
  in
  walk (head heap desc)

let length heap desc =
  let n = ref 0 in
  iter heap desc (fun _ -> incr n);
  !n

let to_list heap desc =
  let acc = ref [] in
  iter heap desc (fun w -> acc := w :: !acc);
  List.rev !acc
