(** PMDK-style transactional vector: a dense PM array updated in place.

    This is the baseline the paper's vector and vec-swap workloads use --
    a flat, contiguous layout where an element update snapshots one word
    and writes one word, which is why PMDK wins the vector comparison
    (Section 6.3: MOD's tree-based vector costs, not benefits).

    Elements are scalar words (the workloads use 8-byte values); the data
    block is [Raw] so stale capacity beyond [size] can never be mistaken
    for pointers.

    Layout: descriptor [size; capacity; data_ptr]; data block of
    [capacity] words. *)

let d_size = 0
let d_capacity = 1
let d_data = 2

let create tx ~capacity =
  if capacity <= 0 then invalid_arg "Pm_array.create";
  let data = Tx.alloc tx ~kind:Pmalloc.Block.Raw ~words:capacity in
  let desc = Tx.alloc tx ~kind:Pmalloc.Block.Scanned ~words:3 in
  Tx.store_fresh tx (desc + d_size) (Pmem.Word.of_int 0);
  Tx.store_fresh tx (desc + d_capacity) (Pmem.Word.of_int capacity);
  Tx.store_fresh tx (desc + d_data) (Pmem.Word.of_ptr data);
  desc

let size heap desc = Pmem.Word.to_int (Pmalloc.Heap.load heap (desc + d_size))

let capacity heap desc =
  Pmem.Word.to_int (Pmalloc.Heap.load heap (desc + d_capacity))

let data heap desc = Pmem.Word.to_ptr (Pmalloc.Heap.load heap (desc + d_data))

let check_bounds heap desc i fn =
  let n = size heap desc in
  if i < 0 || i >= n then
    invalid_arg (Printf.sprintf "Pm_array.%s: index %d out of bounds (%d)" fn i n)

let get heap desc i =
  check_bounds heap desc i "get";
  Pmalloc.Heap.load heap (data heap desc + i)

(* Point update: snapshot one element word, overwrite it. *)
let set tx desc i w =
  let heap = Tx.heap tx in
  check_bounds heap desc i "set";
  let off = data heap desc + i in
  Tx.add tx ~off ~words:1;
  Tx.store tx off w

(* Swap two elements in one transaction: two snapshots, two stores
   (the vec-swap workload, emulating canneal's main loop). *)
let swap tx desc i j =
  let heap = Tx.heap tx in
  check_bounds heap desc i "swap";
  check_bounds heap desc j "swap";
  let d = data heap desc in
  let vi = Pmalloc.Heap.load heap (d + i) in
  let vj = Pmalloc.Heap.load heap (d + j) in
  Tx.add tx ~off:(d + i) ~words:1;
  Tx.add tx ~off:(d + j) ~words:1;
  Tx.store tx (d + i) vj;
  Tx.store tx (d + j) vi

let grow tx desc =
  let heap = Tx.heap tx in
  let cap = capacity heap desc in
  let old = data heap desc in
  let n = size heap desc in
  let fresh = Tx.alloc tx ~kind:Pmalloc.Block.Raw ~words:(2 * cap) in
  for i = 0 to n - 1 do
    Tx.store_fresh tx (fresh + i) (Pmalloc.Heap.load heap (old + i))
  done;
  Tx.add tx ~off:(desc + d_capacity) ~words:2;
  Tx.store tx (desc + d_capacity) (Pmem.Word.of_int (2 * cap));
  Tx.store tx (desc + d_data) (Pmem.Word.of_ptr fresh);
  Tx.free_on_commit tx old

let push_back tx desc w =
  let heap = Tx.heap tx in
  if size heap desc = capacity heap desc then grow tx desc;
  let n = size heap desc in
  let off = data heap desc + n in
  Tx.add tx ~off ~words:1;
  Tx.store tx off w;
  Tx.add tx ~off:(desc + d_size) ~words:1;
  Tx.store tx (desc + d_size) (Pmem.Word.of_int (n + 1))

let iter heap desc fn =
  let n = size heap desc in
  let d = data heap desc in
  for i = 0 to n - 1 do
    fn (Pmalloc.Heap.load heap (d + i))
  done
