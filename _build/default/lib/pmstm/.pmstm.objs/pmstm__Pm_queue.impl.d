lib/pmstm/pm_queue.ml: List Pmalloc Pmem Tx
