lib/pmstm/pm_stack.ml: List Pmalloc Pmem Tx
