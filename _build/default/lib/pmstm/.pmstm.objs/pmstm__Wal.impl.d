lib/pmstm/wal.ml: Array Pmalloc Pmem
