lib/pmstm/pm_ctree.ml: Option Pmalloc Pmem Tx
