lib/pmstm/pm_hashmap.ml: Option Pfds Pmalloc Pmem Tx
