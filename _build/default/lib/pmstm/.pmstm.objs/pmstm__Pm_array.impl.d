lib/pmstm/pm_array.ml: Pmalloc Pmem Printf Tx
