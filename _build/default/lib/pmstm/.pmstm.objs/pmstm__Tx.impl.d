lib/pmstm/tx.ml: Hashtbl List Pmalloc Pmem Printf Wal
