(** PMDK-style transactional stack: a linked list updated in place.

    Layout: descriptor [head]; node [value; next]. *)

let create tx =
  let desc = Tx.alloc tx ~kind:Pmalloc.Block.Scanned ~words:1 in
  Tx.store_fresh tx desc Pmem.Word.null;
  desc

let head heap desc = Pmalloc.Heap.load heap desc
let is_empty heap desc = Pmem.Word.is_null (head heap desc)

let push tx desc w =
  let heap = Tx.heap tx in
  let node = Tx.alloc tx ~kind:Pmalloc.Block.Scanned ~words:2 in
  Tx.store_fresh tx node w;
  Tx.store_fresh tx (node + 1) (head heap desc);
  Tx.add tx ~off:desc ~words:1;
  Tx.store tx desc (Pmem.Word.of_ptr node)

let pop tx desc =
  let heap = Tx.heap tx in
  let h = head heap desc in
  if Pmem.Word.is_null h then None
  else begin
    let node = Pmem.Word.to_ptr h in
    let v = Pmalloc.Heap.load heap node in
    Tx.add tx ~off:desc ~words:1;
    Tx.store tx desc (Pmalloc.Heap.load heap (node + 1));
    Tx.free_on_commit tx node;
    Some v
  end

let iter heap desc fn =
  let rec walk w =
    if not (Pmem.Word.is_null w) then begin
      let node = Pmem.Word.to_ptr w in
      fn (Pmalloc.Heap.load heap node);
      walk (Pmalloc.Heap.load heap (node + 1))
    end
  in
  walk (head heap desc)

let length heap desc =
  let n = ref 0 in
  iter heap desc (fun _ -> incr n);
  !n

let to_list heap desc =
  let acc = ref [] in
  iter heap desc (fun w -> acc := w :: !acc);
  List.rev !acc
