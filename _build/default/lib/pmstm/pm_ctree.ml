(** PMDK-style transactional crit-bit tree (the WHISPER suite's "ctree").

    The paper's map microbenchmark can be backed by either of WHISPER's
    two map implementations -- hashmap or ctree; the authors compare
    against hashmap because it outperformed ctree on Optane (Section 6.1).
    This is the ctree, so the repository can reproduce that baseline
    choice too (bench `ctree` section).

    A crit-bit (PATRICIA) trie over non-negative integer keys: internal
    nodes remember the highest bit position at which their two subtrees
    differ; leaves hold a key/value pair.  Updates are in-place inside
    undo-logged transactions, as in the PMDK `ctree_map` example.

    Layout ([Scanned] blocks, tagged words):
    - descriptor: [count; root]
    - internal:   [bit | 1-tagged marker; left; right]
    - leaf:       [bit = -1 marker; key; value]

    The [bit] word doubles as the node-kind discriminator: leaves store
    -1, internal nodes the crit-bit index (0..61). *)

let d_count = 0
let d_root = 1

let n_bit = 0
let n_left = 1
let n_right = 2

let l_key = 1
let l_value = 2

let create tx =
  let desc = Tx.alloc tx ~kind:Pmalloc.Block.Scanned ~words:2 in
  Tx.store_fresh tx (desc + d_count) (Pmem.Word.of_int 0);
  Tx.store_fresh tx (desc + d_root) Pmem.Word.null;
  desc

let count heap desc = Pmem.Word.to_int (Pmalloc.Heap.load heap (desc + d_count))
let cardinal = count

let is_leaf heap node =
  Pmem.Word.to_int (Pmalloc.Heap.load heap (node + n_bit)) < 0

let node_bit heap node = Pmem.Word.to_int (Pmalloc.Heap.load heap (node + n_bit))
let leaf_key heap node = Pmem.Word.to_int (Pmalloc.Heap.load heap (node + l_key))

let check_key k =
  if k < 0 then invalid_arg "Pm_ctree: keys must be non-negative"

(* Highest bit position where a and b differ (a <> b). *)
let crit_bit a b =
  let x = a lxor b in
  let rec go bit = if x lsr bit <> 0 then bit else go (bit - 1) in
  go 61

(* Descend to the leaf the key would belong with. *)
let rec find_leaf heap node k =
  if is_leaf heap node then node
  else begin
    let bit = node_bit heap node in
    let side = if (k lsr bit) land 1 = 0 then n_left else n_right in
    find_leaf heap (Pmem.Word.to_ptr (Pmalloc.Heap.load heap (node + side))) k
  end

let find heap desc k =
  check_key k;
  let root = Pmalloc.Heap.load heap (desc + d_root) in
  if Pmem.Word.is_null root then None
  else begin
    let leaf = find_leaf heap (Pmem.Word.to_ptr root) k in
    if leaf_key heap leaf = k then
      Some (Pmalloc.Heap.load heap (leaf + l_value))
    else None
  end

let mem heap desc k = Option.is_some (find heap desc k)

let make_leaf tx k v =
  let leaf = Tx.alloc tx ~kind:Pmalloc.Block.Scanned ~words:3 in
  Tx.store_fresh tx (leaf + n_bit) (Pmem.Word.of_int (-1));
  Tx.store_fresh tx (leaf + l_key) (Pmem.Word.of_int k);
  Tx.store_fresh tx (leaf + l_value) v;
  leaf

let bump_count tx desc delta =
  let heap = Tx.heap tx in
  Tx.add tx ~off:(desc + d_count) ~words:1;
  Tx.store tx (desc + d_count) (Pmem.Word.of_int (count heap desc + delta))

(* Insert or update; [v] is an owned value word.  Returns [true] when a
   new key was added. *)
let insert tx desc k v =
  check_key k;
  let heap = Tx.heap tx in
  let root = Pmalloc.Heap.load heap (desc + d_root) in
  if Pmem.Word.is_null root then begin
    let leaf = make_leaf tx k v in
    Tx.add tx ~off:(desc + d_root) ~words:1;
    Tx.store tx (desc + d_root) (Pmem.Word.of_ptr leaf);
    bump_count tx desc 1;
    true
  end
  else begin
    let nearest = find_leaf heap (Pmem.Word.to_ptr root) k in
    let existing = leaf_key heap nearest in
    if existing = k then begin
      (* overwrite in place *)
      Tx.add tx ~off:(nearest + l_value) ~words:1;
      Tx.store tx (nearest + l_value) v;
      false
    end
    else begin
      let bit = crit_bit existing k in
      (* walk again to the edge where the new internal node splices in:
         the first node whose crit-bit is below [bit] *)
      let leaf = make_leaf tx k v in
      let rec splice parent_off =
        let node_w = Pmalloc.Heap.load heap parent_off in
        let node = Pmem.Word.to_ptr node_w in
        if (not (is_leaf heap node)) && node_bit heap node > bit then begin
          let side = if (k lsr node_bit heap node) land 1 = 0 then n_left else n_right in
          splice (node + side)
        end
        else begin
          let internal = Tx.alloc tx ~kind:Pmalloc.Block.Scanned ~words:3 in
          Tx.store_fresh tx (internal + n_bit) (Pmem.Word.of_int bit);
          let new_side, old_side =
            if (k lsr bit) land 1 = 0 then (n_left, n_right) else (n_right, n_left)
          in
          Tx.store_fresh tx (internal + new_side) (Pmem.Word.of_ptr leaf);
          Tx.store_fresh tx (internal + old_side) node_w;
          Tx.add tx ~off:parent_off ~words:1;
          Tx.store tx parent_off (Pmem.Word.of_ptr internal)
        end
      in
      splice (desc + d_root);
      bump_count tx desc 1;
      true
    end
  end

let remove tx desc k =
  check_key k;
  let heap = Tx.heap tx in
  let root = Pmalloc.Heap.load heap (desc + d_root) in
  if Pmem.Word.is_null root then false
  else begin
    (* walk with the grandparent edge so the sibling can replace the
       parent internal node *)
    let rec walk parent_off =
      let node = Pmem.Word.to_ptr (Pmalloc.Heap.load heap parent_off) in
      if is_leaf heap node then
        if leaf_key heap node = k then begin
          Tx.add tx ~off:parent_off ~words:1;
          Tx.store tx parent_off Pmem.Word.null;
          Tx.free_on_commit tx node;
          true
        end
        else false
      else begin
        let bit = node_bit heap node in
        let side = if (k lsr bit) land 1 = 0 then n_left else n_right in
        let child = Pmem.Word.to_ptr (Pmalloc.Heap.load heap (node + side)) in
        if is_leaf heap child then
          if leaf_key heap child = k then begin
            (* replace this internal node with the sibling subtree *)
            let other = if side = n_left then n_right else n_left in
            let sibling = Pmalloc.Heap.load heap (node + other) in
            Tx.add tx ~off:parent_off ~words:1;
            Tx.store tx parent_off sibling;
            Tx.free_on_commit tx child;
            Tx.free_on_commit tx node;
            true
          end
          else false
        else walk (node + side)
      end
    in
    let removed = walk (desc + d_root) in
    if removed then bump_count tx desc (-1);
    removed
  end

let iter heap desc fn =
  let rec go w =
    if not (Pmem.Word.is_null w) then begin
      let node = Pmem.Word.to_ptr w in
      if is_leaf heap node then
        fn (leaf_key heap node) (Pmalloc.Heap.load heap (node + l_value))
      else begin
        go (Pmalloc.Heap.load heap (node + n_left));
        go (Pmalloc.Heap.load heap (node + n_right))
      end
    end
  in
  go (Pmalloc.Heap.load heap (desc + d_root))
