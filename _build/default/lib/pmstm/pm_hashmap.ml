(** PMDK-style transactional hashmap (the paper's baseline map/set).

    Modelled on PMDK's [hashmap_tx] example, which WHISPER's and the
    paper's map/set microbenchmarks use: a bucket array with chained
    entry nodes, updated in place inside undo-logged transactions.  This
    is the contiguous, cache-friendly layout the paper credits for the
    baseline's lower L1D miss ratios (Section 6.5).

    Layout ([Scanned] blocks, tagged words):
    - descriptor: [count; nbuckets; buckets_ptr]
    - buckets:    [head0; head1; ...]          (chain heads, null-padded)
    - entry:      [hash; key; value; next]     (keys/values via codecs) *)

module Make (K : Pfds.Kv.CODEC) (V : Pfds.Kv.CODEC) = struct
  type key = K.t
  type value = V.t

  let desc_count = 0
  let desc_nbuckets = 1
  let desc_buckets = 2

  let e_hash = 0
  let e_key = 1
  let e_value = 2
  let e_next = 3

  (* Allocate an empty map inside a transaction; returns the descriptor
     body offset. *)
  let create tx ~nbuckets =
    let heap = Tx.heap tx in
    let buckets =
      Tx.alloc tx ~kind:Pmalloc.Block.Scanned ~words:nbuckets
    in
    for b = 0 to nbuckets - 1 do
      Tx.store_fresh tx (buckets + b) Pmem.Word.null
    done;
    let desc = Tx.alloc tx ~kind:Pmalloc.Block.Scanned ~words:3 in
    Tx.store_fresh tx (desc + desc_count) (Pmem.Word.of_int 0);
    Tx.store_fresh tx (desc + desc_nbuckets) (Pmem.Word.of_int nbuckets);
    Tx.store_fresh tx (desc + desc_buckets) (Pmem.Word.of_ptr buckets);
    ignore heap;
    desc

  let count heap desc =
    Pmem.Word.to_int (Pmalloc.Heap.load heap (desc + desc_count))

  let nbuckets heap desc =
    Pmem.Word.to_int (Pmalloc.Heap.load heap (desc + desc_nbuckets))

  let buckets heap desc =
    Pmem.Word.to_ptr (Pmalloc.Heap.load heap (desc + desc_buckets))

  let bucket_of heap desc hash = buckets heap desc + (hash mod nbuckets heap desc)

  (* Walk a chain; returns (entry, predecessor word offset). *)
  let find_entry heap desc key hash =
    let rec walk prev_off w =
      if Pmem.Word.is_null w then None
      else begin
        let e = Pmem.Word.to_ptr w in
        let h = Pmem.Word.to_int (Pmalloc.Heap.load heap (e + e_hash)) in
        if h = hash && K.equal key (K.read heap (Pmalloc.Heap.load heap (e + e_key)))
        then Some (e, prev_off)
        else walk (e + e_next) (Pmalloc.Heap.load heap (e + e_next))
      end
    in
    let boff = bucket_of heap desc hash in
    walk boff (Pmalloc.Heap.load heap boff)

  let free_word_blob tx w =
    if Pmem.Word.is_ptr w && not (Pmem.Word.is_null w) then
      Tx.free_on_commit tx (Pmem.Word.to_ptr w)

  (* Insert or update; returns [true] if a new key was added. *)
  let insert tx desc key value =
    let heap = Tx.heap tx in
    let hash = K.hash key in
    match find_entry heap desc key hash with
    | Some (e, _) ->
        (* update in place: snapshot the value word, swap the payload *)
        Tx.add tx ~off:(e + e_value) ~words:1;
        free_word_blob tx (Pmalloc.Heap.load heap (e + e_value));
        Tx.store tx (e + e_value) (V.write heap value);
        false
    | None ->
        let e = Tx.alloc tx ~kind:Pmalloc.Block.Scanned ~words:4 in
        let boff = bucket_of heap desc hash in
        let head = Pmalloc.Heap.load heap boff in
        Tx.store_fresh tx (e + e_hash) (Pmem.Word.of_int hash);
        Tx.store_fresh tx (e + e_key) (K.write heap key);
        Tx.store_fresh tx (e + e_value) (V.write heap value);
        Tx.store_fresh tx (e + e_next) head;
        Tx.add tx ~off:boff ~words:1;
        Tx.store tx boff (Pmem.Word.of_ptr e);
        Tx.add tx ~off:(desc + desc_count) ~words:1;
        Tx.store tx (desc + desc_count)
          (Pmem.Word.of_int (count heap desc + 1));
        true

  let remove tx desc key =
    let heap = Tx.heap tx in
    let hash = K.hash key in
    match find_entry heap desc key hash with
    | None -> false
    | Some (e, prev_off) ->
        let next = Pmalloc.Heap.load heap (e + e_next) in
        Tx.add tx ~off:prev_off ~words:1;
        Tx.store tx prev_off next;
        free_word_blob tx (Pmalloc.Heap.load heap (e + e_key));
        free_word_blob tx (Pmalloc.Heap.load heap (e + e_value));
        Tx.free_on_commit tx e;
        Tx.add tx ~off:(desc + desc_count) ~words:1;
        Tx.store tx (desc + desc_count)
          (Pmem.Word.of_int (count heap desc - 1));
        true

  let find heap desc key =
    match find_entry heap desc key (K.hash key) with
    | Some (e, _) -> Some (V.read heap (Pmalloc.Heap.load heap (e + e_value)))
    | None -> None

  let mem heap desc key = Option.is_some (find heap desc key)

  let iter heap desc fn =
    let n = nbuckets heap desc in
    let b0 = buckets heap desc in
    for b = 0 to n - 1 do
      let rec walk w =
        if not (Pmem.Word.is_null w) then begin
          let e = Pmem.Word.to_ptr w in
          fn
            (K.read heap (Pmalloc.Heap.load heap (e + e_key)))
            (V.read heap (Pmalloc.Heap.load heap (e + e_value)));
          walk (Pmalloc.Heap.load heap (e + e_next))
        end
      in
      walk (Pmalloc.Heap.load heap (b0 + b))
    done

  let cardinal heap desc = count heap desc
end
