(** A handle binds a MOD datastructure to a persistent root slot.

    Through the Basic interface a handle behaves like a mutable
    datastructure with logically in-place, failure-atomic updates
    (Section 4.3.1); underneath, each operation is
    pure-update-then-CommitSingle.  The Composition interface exposes the
    versions (Section 4.3.2): [current] reads the installed version,
    pure updates return shadows, and {!Commit} installs them. *)

type t = { heap : Pmalloc.Heap.t; slot : int }

let make heap ~slot = { heap; slot }
let heap t = t.heap
let slot t = t.slot
let current t = Pmalloc.Heap.root_get t.heap t.slot
let is_initialized t = not (Pmem.Word.is_null (current t))

(* Install an initial version into an empty slot, failure-atomically. *)
let initialize t version =
  if is_initialized t then invalid_arg "Handle.initialize: slot already bound";
  Commit.single t.heap ~slot:t.slot version

let commit ?intermediates t version =
  Commit.single ?intermediates t.heap ~slot:t.slot version
