(** A handle binds a MOD datastructure to a persistent root slot.

    Through the Basic interface (Section 4.3.1) a handle behaves like a
    mutable datastructure with logically in-place failure-atomic updates;
    underneath, each operation is pure-update-then-CommitSingle.  The
    Composition interface (Section 4.3.2) works on the versions directly:
    [current] reads the installed version, pure updates return shadows,
    and [commit] installs them. *)

type t

val make : Pmalloc.Heap.t -> slot:int -> t
val heap : t -> Pmalloc.Heap.t
val slot : t -> int

val current : t -> Pmem.Word.t
(** The installed durable version (null if none). *)

val is_initialized : t -> bool

val initialize : t -> Pmem.Word.t -> unit
(** Install an initial version into an empty slot, failure-atomically. *)

val commit : ?intermediates:Pmem.Word.t list -> t -> Pmem.Word.t -> unit
(** CommitSingle against this handle's slot. *)
