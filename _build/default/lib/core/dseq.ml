(** MOD durable sequence: the RRB tree ({!Pfds.Rrb}) under Functional
    Shadowing — the paper's vector structure with its full interface
    (reference [44]), including failure-atomic O(log n) concatenation and
    slicing.  Append-heavy workloads should prefer {!Dvec}, whose tail
    buffer makes push_back cheaper; [Dseq] is the general sequence. *)

type t = Handle.t

let open_or_create heap ~slot =
  let h = Handle.make heap ~slot in
  if not (Handle.is_initialized h) then Handle.initialize h (Pfds.Rrb.create heap);
  h

(* -- Composition interface ------------------------------------------------ *)

let empty_version heap = Pfds.Rrb.create heap
let of_words_pure = Pfds.Rrb.of_words
let set_pure = Pfds.Rrb.set
let concat_pure = Pfds.Rrb.concat
let slice_pure = Pfds.Rrb.slice
let get_in = Pfds.Rrb.get
let size_in = Pfds.Rrb.size

(* -- Basic interface ------------------------------------------------------ *)

let push_back t w =
  let heap = Handle.heap t in
  Handle.commit t (Pfds.Rrb.push_back heap (Handle.current t) w)

let set t i w =
  let heap = Handle.heap t in
  Handle.commit t (Pfds.Rrb.set heap (Handle.current t) i w)

(* Append another durable sequence's current contents, failure-atomically. *)
let append t other =
  let heap = Handle.heap t in
  Handle.commit t
    (Pfds.Rrb.concat heap (Handle.current t) (Handle.current other))

(* Keep only [pos, pos+len), failure-atomically. *)
let restrict t ~pos ~len =
  let heap = Handle.heap t in
  Handle.commit t (Pfds.Rrb.slice heap (Handle.current t) ~pos ~len)

let get t i = Pfds.Rrb.get (Handle.heap t) (Handle.current t) i
let size t = Pfds.Rrb.size (Handle.heap t) (Handle.current t)
let is_empty t = size t = 0
let iter t fn = Pfds.Rrb.iter (Handle.heap t) (Handle.current t) fn
let to_list t = Pfds.Rrb.to_list (Handle.heap t) (Handle.current t)
