(** MOD durable priority queue — a sixth datastructure produced by the
    paper's recipe (Section 4.2) from a purely functional leftist heap
    ({!Pfds.Pheap}).  Included to demonstrate that new MOD datastructures
    really are a recipe application: the whole module is a thin
    pure-update + CommitSingle wrapper, identical in shape to the five
    the paper ships. *)

type t = Handle.t

(* A null version is a valid (empty) heap. *)
let open_or_create heap ~slot = Handle.make heap ~slot

let empty_version = Pfds.Pheap.empty
let insert_pure = Pfds.Pheap.insert
let delete_min_pure = Pfds.Pheap.delete_min

let insert t p =
  let heap = Handle.heap t in
  Handle.commit t (Pfds.Pheap.insert heap (Handle.current t) p)

let find_min t = Pfds.Pheap.find_min (Handle.heap t) (Handle.current t)

let delete_min t =
  let heap = Handle.heap t in
  match Pfds.Pheap.delete_min heap (Handle.current t) with
  | None -> None
  | Some (p, shadow) ->
      Handle.commit t shadow;
      Some p

let is_empty t = Pfds.Pheap.is_empty (Handle.current t)
let cardinal t = Pfds.Pheap.cardinal (Handle.heap t) (Handle.current t)
