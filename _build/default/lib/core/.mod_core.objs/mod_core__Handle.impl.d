lib/core/handle.ml: Commit Pmalloc Pmem
