lib/core/dqueue.ml: Handle Pfds
