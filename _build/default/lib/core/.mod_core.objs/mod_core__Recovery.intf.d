lib/core/recovery.mli: Format Pmalloc Pmem Pmstm
