lib/core/dset.ml: Dmap Pfds
