lib/core/commit.ml: List Pfds Pmalloc Pmem Pmstm
