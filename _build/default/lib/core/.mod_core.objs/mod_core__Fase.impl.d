lib/core/fase.ml: Format Pmalloc Pmem
