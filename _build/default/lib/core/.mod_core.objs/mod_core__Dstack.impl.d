lib/core/dstack.ml: Handle Pfds
