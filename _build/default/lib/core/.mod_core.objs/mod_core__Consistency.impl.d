lib/core/consistency.ml: Format Hashtbl List Pmalloc Pmem
