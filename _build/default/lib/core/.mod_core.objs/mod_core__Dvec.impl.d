lib/core/dvec.ml: Handle Pfds
