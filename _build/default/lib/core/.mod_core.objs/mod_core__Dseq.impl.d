lib/core/dseq.ml: Handle Pfds
