lib/core/handle.mli: Pmalloc Pmem
