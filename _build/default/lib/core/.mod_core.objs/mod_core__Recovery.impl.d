lib/core/recovery.ml: Format Pmalloc Pmstm
