lib/core/consistency.mli: Format Pmem
