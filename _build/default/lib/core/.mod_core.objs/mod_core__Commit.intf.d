lib/core/commit.mli: Pmalloc Pmem Pmstm
