lib/core/fase.mli: Format Pmalloc
