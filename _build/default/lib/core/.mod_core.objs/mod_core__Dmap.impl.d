lib/core/dmap.ml: Handle Pfds
