lib/core/dpqueue.ml: Handle Pfds
