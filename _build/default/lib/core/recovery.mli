(** Crash recovery for MOD heaps (paper Sections 5.2-5.3).

    After a power failure the durable image holds, per root slot, either
    the pre-FASE or the post-FASE version -- never a torn one -- plus
    leaked shadow allocations from any interrupted FASE.  Recovery rolls
    back an interrupted PM-STM transaction if the heap hosts one
    (CommitUnrelated / the PMDK baseline), then runs the reachability
    analysis that recomputes reference counts and reclaims every leak. *)

type report = { stm_rolled_back : bool; gc : Pmalloc.Recovery_gc.report }

val recover : ?stm:Pmstm.Tx.t -> Pmalloc.Heap.t -> report
(** Recovery against the current durable image (call after a crash). *)

val crash_and_recover :
  ?mode:Pmem.Region.crash_mode -> ?stm:Pmstm.Tx.t -> Pmalloc.Heap.t -> report
(** Inject a power failure, then recover. *)

val pp_report : Format.formatter -> report -> unit
