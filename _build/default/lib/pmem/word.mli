(** Tagged 8-byte persistent-memory words.

    Every word stored in the simulated PM region through the typed API is
    either a persistent pointer (a word offset into the region) or a 62-bit
    signed scalar.  The tag lets the recovery garbage collector and the
    reference-count machinery identify pointers without any per-datastructure
    layout knowledge. *)

type t = private int

val null : t
(** The null persistent pointer. *)

val of_ptr : int -> t
(** [of_ptr off] encodes the word offset [off >= 0] as a pointer. *)

val to_ptr : t -> int
(** Decodes a pointer; raises [Invalid_argument] on a scalar word. *)

val of_int : int -> t
(** Encodes a signed scalar (truncated to 62 bits). *)

val to_int : t -> int
(** Decodes a scalar; raises [Invalid_argument] on a pointer word. *)

val is_ptr : t -> bool
val is_null : t -> bool

val raw : int -> t
(** [raw bits] reinterprets untyped bits (blob payload) as a word. *)

val bits : t -> int
(** Raw bit pattern, for blob payloads and debugging. *)

val zero : t

val pp : Format.formatter -> t -> unit
