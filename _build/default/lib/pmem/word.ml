type t = int

(* bit 0 = 1 : persistent pointer, payload is a word offset.
   bit 0 = 0 : scalar, payload is a signed 62-bit integer. *)

let null = 1
let of_ptr off =
  if off < 0 then invalid_arg "Word.of_ptr: negative offset";
  (off lsl 1) lor 1

let is_ptr w = w land 1 = 1
let is_null w = w = null

let to_ptr w =
  if not (is_ptr w) then invalid_arg "Word.to_ptr: scalar word";
  w lsr 1

let of_int v = v lsl 1
let to_int w =
  if is_ptr w then invalid_arg "Word.to_int: pointer word";
  w asr 1

let raw bits = bits
let bits w = w
let zero = 0

let pp ppf w =
  if is_ptr w then
    if is_null w then Format.fprintf ppf "null"
    else Format.fprintf ppf "&%d" (to_ptr w)
  else Format.fprintf ppf "%d" (to_int w)
