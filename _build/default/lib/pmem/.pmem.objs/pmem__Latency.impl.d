lib/pmem/latency.ml: Config
