lib/pmem/config.ml: Printf String
