lib/pmem/region.mli: Cache Stats Trace Word
