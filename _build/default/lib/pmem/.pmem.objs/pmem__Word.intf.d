lib/pmem/word.mli: Format
