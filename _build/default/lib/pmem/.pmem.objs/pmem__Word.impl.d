lib/pmem/word.ml: Format
