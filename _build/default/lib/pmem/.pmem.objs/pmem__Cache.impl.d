lib/pmem/cache.ml: Array Config
