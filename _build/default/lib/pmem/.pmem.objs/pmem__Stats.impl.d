lib/pmem/stats.ml: Format Fun Hashtbl
