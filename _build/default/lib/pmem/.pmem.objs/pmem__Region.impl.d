lib/pmem/region.ml: Array Cache Config Latency Printf Random Stats Trace Word
