lib/pmem/trace.ml: Array Format
