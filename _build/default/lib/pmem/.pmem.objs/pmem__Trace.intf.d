lib/pmem/trace.mli: Format
