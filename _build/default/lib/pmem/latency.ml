(** Analytical flush-latency model (Section 3 of the paper).

    The paper measures one clwb + one sfence at 353 ns on Optane DCPMM and
    fits the benefit of overlapping N flushes under one fence with Amdahl's
    law via the Karp-Flatt metric: flushes act [f = 0.82] parallel and
    [1 - f = 0.18] serial.  The average per-flush latency is then

      avg(N) = T1 * ((1 - f) + f / N)

    and a fence draining N in-flight lines stalls the CPU for

      stall(N) = N * avg(N) = T1 * ((1 - f) * N + f).

    This closed form is both the "amdahl" line of Figure 4 and the timing
    charged by the simulated hardware, so the simulator reproduces the
    paper's ordering-cost trade-off by construction. *)

let t1 = Config.flush_fence_ns
let f = Config.flush_parallel_fraction

let amdahl_avg_ns n =
  if n <= 0 then invalid_arg "Latency.amdahl_avg_ns";
  t1 *. ((1.0 -. f) +. (f /. float_of_int n))

let fence_stall_ns ~inflight =
  if inflight <= 0 then Config.fence_base_ns
  else t1 *. (((1.0 -. f) *. float_of_int inflight) +. f)

type load_level = L1 | L2 | Llc | Pm

let load_ns = function
  | L1 -> Config.l1_hit_ns
  | L2 -> Config.l2_hit_ns
  | Llc -> Config.llc_hit_ns
  | Pm -> Config.pm_read_ns

let store_ns = Config.store_ns
