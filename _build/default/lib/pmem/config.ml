(** Simulated machine configuration, mirroring Table 1 of the paper.

    The test machine in the paper is a 2-socket Cascade Lake with Intel
    Optane DCPMM in 100% App Direct mode.  We reproduce the parameters the
    evaluation actually depends on: cacheline geometry, L1D size, PM and
    DRAM random-read latencies, and the measured flush/fence cost. *)

let cacheline_bytes = 64
let word_bytes = 8
let words_per_line = cacheline_bytes / word_bytes
let line_shift = 3 (* log2 words_per_line *)

(* L1D: 32 KB, 8-way set associative, 64 B lines -> 64 sets. *)
let l1d_bytes = 32 * 1024
let l1d_ways = 8
let l1d_sets = l1d_bytes / (cacheline_bytes * l1d_ways)

(* Table 1: random 8-byte read latencies. *)
let pm_read_ns = 302.0
let dram_read_ns = 80.0

(* L2: 1 MB per core, 16-way.  LLC: 33 MB shared, modelled 16-way. *)
let l2_sets = 1024
let l2_ways = 16
let llc_sets = 32 * 1024
let llc_ways = 16

(* Cache-hit load and store-buffer store costs (cycles at 3.7 GHz, rounded). *)
let l1_hit_ns = 1.0
let l2_hit_ns = 14.0
let llc_hit_ns = 36.0
let store_ns = 1.0

(* Fixed CPU cost of constructing one undo-log entry (allocation, metadata
   bookkeeping in libpmemobj) beyond the data copy itself, and of the
   commit-path processing.  The companion access counts put the same
   instruction footprint into the L1D hit statistics so miss ratios keep a
   whole-program denominator (Figure 11). *)
let log_entry_overhead_ns = 120.0
let log_entry_accesses = 150
let tx_commit_overhead_ns = 200.0
let tx_commit_accesses = 250

(* Per-iteration application logic (key generation, branching, call
   overhead) that the workload drivers execute around each datastructure
   operation; real runs spend a few hundred instructions there. *)
let op_overhead_ns = 150.0

(* Section 3: one clwb followed by one sfence, line resident in L1D. *)
let flush_fence_ns = 353.0

(* Section 3, Figure 4: Karp-Flatt fit -- concurrent flushes act 82%
   parallel, 18% serial. *)
let flush_parallel_fraction = 0.82

(* Cost of an sfence with no in-flight flushes to drain. *)
let fence_base_ns = 10.0

let describe () =
  String.concat "\n"
    [ "Simulated test machine (paper Table 1):";
      "  CPU            Intel Cascade Lake (simulated), 3.7 GHz";
      "  L1D cache      32KB, 8-way, 64B lines";
      Printf.sprintf "  PM read        %.0f ns (random 8-byte read)" pm_read_ns;
      Printf.sprintf "  DRAM read      %.0f ns (random 8-byte read)" dram_read_ns;
      Printf.sprintf "  clwb+sfence    %.0f ns (line in L1D)" flush_fence_ns;
      Printf.sprintf "  flush overlap  Amdahl fit, f=%.2f parallel"
        flush_parallel_fraction ]
