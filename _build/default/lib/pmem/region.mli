(** Simulated persistent-memory region.

    The region is a word-addressable array with per-cacheline durability
    state, modelling a CPU with a write-back L1D cache in front of Optane
    DCPMM.  Stores land in the volatile view; [clwb] launches an unordered
    background writeback of a line; [sfence] guarantees the completion of
    all in-flight writebacks (charging the Amdahl stall of Section 3); a
    [crash] loses everything volatile, randomizing the fate of lines whose
    writeback had been launched or that may have been evicted. *)

type t

type crash_mode =
  | Drop_inflight  (** no launched writeback completed: worst case *)
  | Keep_inflight  (** every launched writeback completed: best case *)
  | Randomize      (** each in-flight / dirty line flips a coin *)

val create : ?capacity_words:int -> ?trace:bool -> ?seed:int -> unit -> t

val stats : t -> Stats.t
val trace : t -> Trace.t
val cache : t -> Cache.t
val capacity_words : t -> int

val ensure_capacity : t -> int -> unit
(** [ensure_capacity t n] grows the region so offsets below [n] are valid. *)

val load : t -> int -> Word.t
(** Cached load of the word at the given offset; charges hit or PM-miss
    latency and updates the cache simulator. *)

val store : t -> int -> Word.t -> unit
(** Cached store; the target line becomes dirty (volatile until flushed or
    evicted). An 8-byte store is atomic, as on x86-64. *)

val clwb : t -> int -> unit
(** Launch a writeback of the line containing the word offset.  Commits
    instantly; the flush proceeds unordered in the background (Figure 3). *)

val clwb_range : t -> int -> int -> unit
(** [clwb_range t off words] issues [clwb] once per distinct line touched
    by the range. *)

val sfence : t -> unit
(** Drain all in-flight writebacks to the durable image; stall per the
    analytical model, attributed to the Flush phase. *)

val inflight : t -> int
(** Number of lines with a launched, un-fenced writeback. *)

val set_fence_per_flush : t -> bool -> unit
(** Ablation knob: when enabled, every [clwb] is immediately followed by
    an [sfence], serializing all flushes (the Section 3 worst case). *)

val crash : ?mode:crash_mode -> t -> unit
(** Power failure: volatile state is lost.  Lines that were flushed and
    fenced are durable; other dirty state survives per [mode].  After the
    call, loads observe exactly the durable image. *)

val durable_load : t -> int -> Word.t
(** Read the durable image directly (recovery-time inspection; charges PM
    read latency but does not disturb the cache simulator). *)

val peek_durable : t -> int -> Word.t
(** Read the durable image with no side effects at all (for tests). *)

val peek_current : t -> int -> Word.t
(** Read the volatile view with no side effects at all (for tests). *)

val line_of_word : int -> int
val is_durable_line : t -> int -> bool
(** [is_durable_line t line] is true when the volatile and durable contents
    of [line] agree (for tests). *)
