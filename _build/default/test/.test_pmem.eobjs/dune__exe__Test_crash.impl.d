test/test_crash.ml: Alcotest Int List Map Mod_core Option Pfds Pmalloc Pmem Pmstm Printf Random
