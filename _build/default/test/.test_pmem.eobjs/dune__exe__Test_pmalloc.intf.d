test/test_pmalloc.mli:
