test/test_pmalloc.ml: Alcotest Gen List Pmalloc Pmem QCheck QCheck_alcotest
