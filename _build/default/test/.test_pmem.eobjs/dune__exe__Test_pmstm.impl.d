test/test_pmstm.ml: Alcotest Array Gen Hashtbl Int List Map Option Pfds Pmalloc Pmem Pmstm Printf QCheck QCheck_alcotest
