test/test_mod.mli:
