test/test_pmem.ml: Alcotest Cache Config Fmt Latency List Pmem Printf QCheck QCheck_alcotest Region Stats Trace Word
