test/test_mod.ml: Alcotest Hashtbl Int List Map Mod_core Option Pfds Pmalloc Pmem Pmstm Printf Queue Random
