test/test_pfds.mli:
