test/test_pmem.mli:
