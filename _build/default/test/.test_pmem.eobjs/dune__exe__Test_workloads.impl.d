test/test_workloads.ml: Alcotest Array List Mod_core Printf Workloads
