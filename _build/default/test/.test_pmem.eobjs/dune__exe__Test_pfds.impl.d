test/test_pfds.ml: Alcotest Gen Hashtbl Int List Map Pfds Pmalloc Pmem Printf QCheck QCheck_alcotest Queue Random String
