test/test_pmstm.mli:
