(* End-to-end workload tests: every Table 2 workload runs on every backend,
   produces sane measurements, and every MOD workload's trace passes the
   Section 5.4 consistency checker. *)

let scale = 1500

let backend_name = Workloads.Backend.kind_name

let sane_result (r : Workloads.Runner.result) =
  Alcotest.(check bool)
    (Printf.sprintf "%s/%s: simulated time positive" r.workload
       (backend_name r.backend))
    true (r.ns_total > 0.0);
  Alcotest.(check bool) "phases sum to total" true
    (abs_float (r.ns_flush +. r.ns_log +. r.ns_other -. r.ns_total)
    < 1e-6 *. r.ns_total +. 1.0);
  Alcotest.(check bool) "miss ratio in [0,1]" true
    (r.miss_ratio >= 0.0 && r.miss_ratio <= 1.0);
  Alcotest.(check bool) "some flushes happened" true (r.flushes > 0);
  Alcotest.(check bool) "some fences happened" true (r.fences > 0)

let workload_tests =
  List.map
    (fun name ->
      Alcotest.test_case (name ^ " on all backends") `Slow (fun () ->
          List.iter
            (fun backend ->
              let r = Workloads.Runner.run_one name backend ~scale in
              sane_result r)
            Workloads.Backend.all_kinds))
    Workloads.Runner.names

let mod_semantics_tests =
  [
    Alcotest.test_case "MOD fences <= ops on every workload" `Slow (fun () ->
        List.iter
          (fun name ->
            let r = Workloads.Runner.run_one name Workloads.Backend.Mod ~scale in
            (* each FASE has exactly one ordering point; lookups have none,
               so fences never exceed operations *)
            Alcotest.(check bool)
              (Printf.sprintf "%s: fences (%d) <= ops (%d)" name r.fences r.ops)
              true
              (r.fences <= r.ops))
          Workloads.Runner.names);
    Alcotest.test_case "MOD logs nothing; PMDK logs" `Slow (fun () ->
        let m = Workloads.Runner.run_one "map" Workloads.Backend.Mod ~scale in
        Alcotest.(check (float 0.001)) "MOD log time = 0" 0.0 m.ns_log;
        let p = Workloads.Runner.run_one "map" Workloads.Backend.Pmdk15 ~scale in
        Alcotest.(check bool) "PMDK log time > 0" true (p.ns_log > 0.0));
    Alcotest.test_case "PMDK fences multiples of MOD's" `Slow (fun () ->
        let m = Workloads.Runner.run_one "map" Workloads.Backend.Mod ~scale in
        let p = Workloads.Runner.run_one "map" Workloads.Backend.Pmdk15 ~scale in
        Alcotest.(check bool)
          (Printf.sprintf "PMDK %d > 2x MOD %d" p.fences m.fences)
          true
          (p.fences > 2 * m.fences));
  ]

let consistency_tests =
  List.map
    (fun name ->
      Alcotest.test_case (name ^ " MOD trace passes checker") `Slow (fun () ->
          let trace =
            Workloads.Runner.run_traced name Workloads.Backend.Mod
              ~scale:(scale / 3)
          in
          let report = Mod_core.Consistency.check trace in
          if not (Mod_core.Consistency.ok report) then
            Alcotest.failf "%s: %a" name Mod_core.Consistency.pp_report report))
    Workloads.Runner.names

let profile_tests =
  [
    Alcotest.test_case "Figure 10 shape: MOD one fence, PMDK many" `Slow
      (fun () ->
        let points = Workloads.Profile.all ~samples:60 ~size:800 () in
        Alcotest.(check int) "16 points (8 ops x 2 backends)" 16
          (List.length points);
        List.iter
          (fun (p : Workloads.Profile.point) ->
            match p.backend with
            | Workloads.Backend.Mod ->
                Alcotest.(check (float 0.01))
                  (p.label ^ ": MOD has exactly one fence per op")
                  1.0 p.fences
            | Workloads.Backend.Pmdk15 | Workloads.Backend.Pmdk14 ->
                Alcotest.(check bool)
                  (Printf.sprintf "%s: PMDK has several fences (%.1f)" p.label
                     p.fences)
                  true (p.fences >= 3.0))
          points);
  ]

let space_tests =
  [
    Alcotest.test_case "Table 3 rows: growth ratios near 2x (except vector)"
      `Slow (fun () ->
        let rows = Workloads.Space.table3 ~n:2000 () in
        Alcotest.(check int) "10 rows" 10 (List.length rows);
        List.iter
          (fun (r : Workloads.Space.row) ->
            Alcotest.(check bool)
              (Printf.sprintf "%s/%s ratio %.2f sane" r.structure
                 (backend_name r.backend) r.ratio)
              true
              (r.ratio >= 1.2 && r.ratio < 4.0))
          rows);
    Alcotest.test_case "per-update shadow overhead is tiny" `Quick (fun () ->
        let transient, live = Workloads.Space.shadow_overhead ~n:4000 in
        let frac = float_of_int transient /. float_of_int live in
        Alcotest.(check bool)
          (Printf.sprintf "transient %d / live %d = %.5f < 1%%" transient live
             frac)
          true (frac < 0.01));
  ]

let graph_tests =
  [
    Alcotest.test_case "R-MAT generates requested shape" `Quick (fun () ->
        let g = Workloads.Graph.rmat ~n:1000 ~edges:12000 ~seed:3 in
        Alcotest.(check int) "nodes" 1000 g.Workloads.Graph.n;
        let total =
          Array.fold_left
            (fun acc adj -> acc + Array.length adj)
            0 g.Workloads.Graph.adj
        in
        Alcotest.(check int) "edges" 12000 total;
        (* scale-free-ish: max degree far above the average *)
        let maxd =
          Array.fold_left
            (fun acc adj -> max acc (Array.length adj))
            0 g.Workloads.Graph.adj
        in
        Alcotest.(check bool)
          (Printf.sprintf "degree skew (max %d)" maxd)
          true (maxd > 60));
    Alcotest.test_case "BFS reaches the same set on both backends" `Quick
      (fun () ->
        let g = Workloads.Graph.rmat ~n:500 ~edges:4000 ~seed:5 in
        let src = Workloads.Graph.good_source g in
        let ctx_mod = Workloads.Backend.create Workloads.Backend.Mod in
        let reach_mod =
          Workloads.Graph.bfs_mod (Workloads.Backend.heap ctx_mod) g ~src
        in
        let ctx_pm = Workloads.Backend.create Workloads.Backend.Pmdk15 in
        let reach_pm = Workloads.Graph.bfs_pmdk ctx_pm g ~src in
        Alcotest.(check int) "same reachable count" reach_mod reach_pm;
        Alcotest.(check bool) "non-trivial" true (reach_mod > 10));
  ]

let ablation_tests =
  [
    Alcotest.test_case "sharing ablation: naive shadow flushes more" `Slow
      (fun () ->
        match Workloads.Ablation.sharing ~ops:150 ~size:600 with
        | [ tree; naive ] ->
            Alcotest.(check bool)
              (Printf.sprintf "naive %d flushes > tree %d" naive.flushes
                 tree.flushes)
              true
              (naive.Workloads.Ablation.flushes > tree.Workloads.Ablation.flushes)
        | _ -> Alcotest.fail "expected two results");
    Alcotest.test_case "ordering ablation: fence-per-flush is slower" `Slow
      (fun () ->
        match Workloads.Ablation.ordering ~ops:300 ~size:600 with
        | [ overlapped; serialized ] ->
            Alcotest.(check bool)
              "serialized flushing costs more time" true
              (serialized.Workloads.Ablation.ns_total
              > overlapped.Workloads.Ablation.ns_total)
        | _ -> Alcotest.fail "expected two results");
    Alcotest.test_case "reclamation ablation: no-reclaim grows memory" `Slow
      (fun () ->
        match Workloads.Ablation.reclamation ~ops:400 ~size:100 with
        | [ reclaiming; leaking ] ->
            Alcotest.(check bool)
              "leaking footprint larger" true
              (leaking.Workloads.Ablation.high_water_words
              > 2 * reclaiming.Workloads.Ablation.high_water_words)
        | _ -> Alcotest.fail "expected two results");
  ]

let () =
  Alcotest.run "workloads"
    [
      ("runs", workload_tests);
      ("mod-semantics", mod_semantics_tests);
      ("consistency", consistency_tests);
      ("profile", profile_tests);
      ("space", space_tests);
      ("graph", graph_tests);
      ("ablations", ablation_tests);
    ]
