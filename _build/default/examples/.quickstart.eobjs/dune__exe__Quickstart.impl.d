examples/quickstart.ml: Format Mod_core Pfds Pmalloc Pmem Printf
