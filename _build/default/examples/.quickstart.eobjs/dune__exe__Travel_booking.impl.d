examples/travel_booking.ml: Mod_core Option Pfds Pmalloc Pmem Printf Random
