examples/graph_search.mli:
