examples/task_scheduler.ml: Format Mod_core Option Pmalloc Printf Random
