examples/travel_booking.mli:
