examples/quickstart.mli:
