examples/crash_recovery.ml: Format Mod_core Option Pfds Pmalloc Pmem Pmstm Printf
