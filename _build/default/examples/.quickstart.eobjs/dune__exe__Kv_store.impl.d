examples/kv_store.ml: Format Mod_core Option Pfds Pmalloc Printf String
