examples/graph_search.ml: Array Bytes Mod_core Pmalloc Pmem Printf Workloads
