examples/task_scheduler.mli:
