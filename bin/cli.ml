(* Shared argument surface for the modpm subcommands.

   One definition of the cross-cutting flags -- --persist, --writers,
   --json, --baseline, --seed, --shards -- instead of the per-subcommand
   copies that had drifted apart: every subcommand that accepts one of
   these spells it, parses it and documents it identically.  (bench's
   hand-rolled parser mirrors the same names.) *)

open Cmdliner

(* --persist: commit policy for whatever structure the subcommand
   drives.  "full" maps to None (the structures' default) so
   policy-free paths stay untouched. *)
let persist_conv =
  let parse = function
    | "full" -> Ok None
    | "backup" -> Ok (Some Pmalloc.Heap.Backup)
    | s -> Error (`Msg (Printf.sprintf "unknown --persist %S (full|backup)" s))
  in
  let print ppf = function
    | None -> Format.pp_print_string ppf "full"
    | Some p -> Format.pp_print_string ppf (Pmalloc.Heap.policy_name p)
  in
  Arg.conv (parse, print)

let persist_arg =
  let doc =
    "Commit policy for the driven structure(s): $(b,full) (persist every \
     node eagerly, the default) or $(b,backup) (persist only the backup \
     data and a bounded op log; recovery reconstructs the interior nodes)."
  in
  Arg.(value & opt persist_conv None & info [ "persist" ] ~docv:"POLICY" ~doc)

let seed_arg ?(default = 1) () =
  let doc = "Master seed all of the run's determinism derives from." in
  Arg.(value & opt int default & info [ "seed" ] ~docv:"SEED" ~doc)

let json_arg =
  let doc = "Write a machine-readable summary to $(docv)." in
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)

let baseline_arg =
  let doc =
    "Gate the run against a committed baseline JSON (bench/BASELINE.json \
     shape) and exit non-zero on regression."
  in
  Arg.(value & opt (some string) None & info [ "baseline" ] ~docv:"FILE" ~doc)

let writers_arg =
  let doc =
    "Concurrent writers (0 = sequential): sweep this many interleaved \
     writers per workload, judged by the concurrent oracle."
  in
  Arg.(value & opt int 0 & info [ "writers" ] ~docv:"N" ~doc)

let shards_arg =
  let doc =
    "Shard count for the serving layer: partition keys across $(docv) \
     heaps (one telemetry collector and, where applicable, one domain \
     each) instead of the single-instance path."
  in
  Arg.(value & opt (some int) None & info [ "shards" ] ~docv:"N" ~doc)
