(* modpm: command-line driver for the MOD reproduction.

   Subcommands:
     run         -- run a Table 2 workload on a backend, print measurements
     crash-test  -- randomized crash/recover rounds on a MOD map
     crashtest   -- exhaustive crash-point exploration with the
                    durable-linearizability oracle (and --replay); with
                    --shards N, the single-shard crash sweep instead
     check       -- run a workload under tracing and apply the Section 5.4
                    consistency checker
     serve       -- with --shards N: the sharded multi-domain serving
                    layer under a zipfian memcached-style loop; without:
                    the kill-test worker (deterministic workload on a
                    file-backed heap, acking durable ops on stdout)
     killtest    -- fork serve workers, SIGKILL them at random/deterministic
                    points, reopen the image and check the oracle; with
                    --shards N, the file-backed single-shard sweep
     fsck        -- offline image checker/repairer
     fig4        -- the flush-concurrency microbenchmark
     machine     -- print the simulated machine configuration

   The cross-cutting flags (--persist, --writers, --json, --baseline,
   --seed, --shards) are defined once in Cli and shared by every
   subcommand that accepts them. *)

open Cmdliner

let backend_conv =
  let parse = function
    | "mod" -> Ok Workloads.Backend.Mod
    | "pmdk14" | "pmdk-1.4" -> Ok Workloads.Backend.Pmdk14
    | "pmdk15" | "pmdk-1.5" -> Ok Workloads.Backend.Pmdk15
    | s -> Error (`Msg (Printf.sprintf "unknown backend %S (mod|pmdk14|pmdk15)" s))
  in
  let print ppf b = Format.pp_print_string ppf (Workloads.Backend.kind_name b) in
  Arg.conv (parse, print)

let workload_arg =
  let doc =
    Printf.sprintf "Workload to run: %s." (String.concat ", " Workloads.Runner.names)
  in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"WORKLOAD" ~doc)

let backend_arg =
  let doc = "Backend: mod, pmdk14 or pmdk15." in
  Arg.(value & opt backend_conv Workloads.Backend.Mod & info [ "backend"; "b" ] ~doc)

let scale_arg =
  let doc = "Number of operations (the paper runs 1,000,000)." in
  Arg.(value & opt int 10_000 & info [ "ops"; "n" ] ~doc)

let check_workload name =
  if not (List.mem name Workloads.Runner.names) then begin
    Printf.eprintf "unknown workload %S; expected one of: %s\n" name
      (String.concat ", " Workloads.Runner.names);
    exit 2
  end

(* -- run -------------------------------------------------------------- *)

let batch_arg =
  let doc =
    "Group-commit size: retire updates in batches of $(docv) under one \
     ordering point (MOD: one Batch commit per group; PMDK: one transaction \
     per group). 1 = one FASE/transaction per operation."
  in
  Arg.(value & opt int 1 & info [ "batch" ] ~docv:"N" ~doc)

(* Render a telemetry report in one of the supported --metrics formats. *)
let render_metrics format report =
  match format with
  | "json" -> Telemetry.Export.to_json report
  | "prom" | "prometheus" -> Telemetry.Export.to_prometheus report
  | "text" -> Format.asprintf "%a" Telemetry.pp_report report
  | other ->
      Printf.eprintf "unknown --metrics format %S (json|prom|text)\n" other;
      exit 2

let emit_metrics ~out format report =
  let payload = render_metrics format report in
  match out with
  | None ->
      print_newline ();
      print_string payload;
      if String.length payload > 0 && payload.[String.length payload - 1] <> '\n'
      then print_newline ()
  | Some path ->
      let oc = open_out path in
      output_string oc payload;
      if String.length payload > 0 && payload.[String.length payload - 1] <> '\n'
      then output_char oc '\n';
      close_out oc;
      Printf.printf "wrote %s\n" path

let metrics_arg =
  let doc =
    "Collect per-(structure x op) telemetry -- latency histograms in sim-ns \
     with p50/p90/p99/max and fence-stall attribution -- and emit it as \
     $(docv): json, prom (Prometheus text) or text."
  in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FORMAT" ~doc)

let metrics_out_arg =
  let doc = "Write the $(b,--metrics) payload to $(docv) instead of stdout." in
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE" ~doc)

let run_cmd =
  let run name backend scale batch metrics metrics_out persist seed json_out =
    check_workload name;
    if batch < 1 then begin
      Printf.eprintf "--batch must be >= 1\n";
      exit 2
    end;
    (match metrics with
    | Some f when f <> "json" && f <> "prom" && f <> "prometheus" && f <> "text"
      ->
        Printf.eprintf "unknown --metrics format %S (json|prom|text)\n" f;
        exit 2
    | _ -> ());
    let sink = Option.map (fun _ -> Telemetry.Sink.Memory) metrics in
    let r =
      Workloads.Runner.run_one ~batch ?metrics:sink ?persist ~seed name backend
        ~scale
    in
    Printf.printf "workload    %s\n" r.Workloads.Runner.workload;
    Printf.printf "backend     %s\n" (Workloads.Backend.kind_name r.backend);
    Printf.printf "operations  %d (batch %d)\n" r.ops r.batch;
    Printf.printf "sim time    %.3f ms\n" (r.ns_total /. 1e6);
    Printf.printf "  flushing  %.3f ms (%.1f%%)\n" (r.ns_flush /. 1e6)
      (100.0 *. Workloads.Runner.flush_fraction r);
    Printf.printf "  logging   %.3f ms (%.1f%%)\n" (r.ns_log /. 1e6)
      (100.0 *. Workloads.Runner.log_fraction r);
    Printf.printf "  other     %.3f ms\n" (r.ns_other /. 1e6);
    Printf.printf "fences      %d (%.2f/op, %.2f/commit)\n" r.fences
      (Workloads.Runner.fences_per_op r)
      (Workloads.Runner.fences_per_commit r);
    Printf.printf "flushes     %d (%.2f/op)\n" r.flushes
      (Workloads.Runner.flushes_per_op r);
    Printf.printf "L1D misses  %.2f%%\n" (100.0 *. r.miss_ratio);
    Printf.printf "live words  %d (high water %d)\n" r.live_words
      r.high_water_words;
    (match json_out with
    | None -> ()
    | Some path ->
        let open Workloads.Report.Json in
        let doc =
          Obj
            [
              ("schema", String "modpm-run/1");
              ("workload", String r.workload);
              ("backend", String (Workloads.Backend.kind_name r.backend));
              ("ops", Int r.ops);
              ("batch", Int r.batch);
              ( "persist",
                String
                  (match persist with
                  | Some Pmalloc.Heap.Backup -> "backup"
                  | _ -> "full") );
              ("seed", Int seed);
              ("sim_ns", Float r.ns_total);
              ("ns_per_op", Float (Workloads.Runner.ns_per_op r));
              ("fences_per_op", Float (Workloads.Runner.fences_per_op r));
              ("flushes_per_op", Float (Workloads.Runner.flushes_per_op r));
              ("miss_ratio", Float r.miss_ratio);
              ("live_words", Int r.live_words);
              ("high_water_words", Int r.high_water_words);
            ]
        in
        to_file path doc;
        Printf.printf "wrote %s\n" path);
    match (metrics, r.telemetry) with
    | Some format, Some report -> emit_metrics ~out:metrics_out format report
    | _ -> ()
  in
  let doc = "Run one Table 2 workload on one backend." in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const run $ workload_arg $ backend_arg $ scale_arg $ batch_arg
      $ metrics_arg $ metrics_out_arg $ Cli.persist_arg $ Cli.seed_arg ()
      $ Cli.json_arg)

(* -- crash-test -------------------------------------------------------- *)

let crash_cmd =
  let module Imap = Mod_core.Dmap.Make (Pfds.Kv.Int) (Pfds.Kv.Int) in
  let run rounds seed =
    let heap = Pmalloc.Heap.create ~capacity_words:(1 lsl 20) () in
    let rng = Random.State.make [| seed |] in
    let survived = ref 0 in
    for round = 1 to rounds do
      let m = Imap.open_or_create heap ~slot:0 in
      let before = Imap.cardinal m in
      let batch = 1 + Random.State.int rng 20 in
      for _ = 1 to batch do
        let k = Random.State.int rng 1000 in
        if Random.State.bool rng then Imap.insert m k k
        else ignore (Imap.remove m k : bool)
      done;
      let report = Mod_core.Recovery.crash_and_recover_exn heap in
      let m' = Imap.open_or_create heap ~slot:0 in
      let after = Imap.cardinal m' in
      incr survived;
      Printf.printf "round %3d: %2d ops, crash, recovered %d->%d entries; %s\n"
        round batch before after
        (Format.asprintf "%a" Mod_core.Recovery.pp_report report)
    done;
    Printf.printf "\n%d/%d rounds recovered to a consistent state.\n" !survived
      rounds
  in
  let rounds =
    Arg.(value & opt int 10 & info [ "rounds" ] ~doc:"Crash/recover rounds.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"RNG seed.") in
  let doc = "Randomized crash/recovery demonstration on a MOD map." in
  Cmd.v (Cmd.info "crash-test" ~doc) Term.(const run $ rounds $ seed)

(* -- crashtest ---------------------------------------------------------- *)

(* The concurrent sweep/replay path of the crashtest command: [writers]
   interleaved writers per workload, every (schedule, crash point) pair
   swept and judged by the concurrent durable-linearizability oracle. *)
let crashtest_concurrent ~cfg ~writers ~ops ~workload ~replay ~mode ~sseed
    ~schedule ~json_out ~baseline =
  let cbuild name =
    try Crashtest.Workload.cbuild name ~writers ~ops
    with Invalid_argument msg ->
      prerr_endline msg;
      exit 2
  in
  let parse_mode () =
    match Crashtest.Explorer.mode_of_name mode with
    | Ok m -> m
    | Error e ->
        prerr_endline e;
        exit 2
  in
  match replay with
  | Some crash_index -> (
      let m = parse_mode () in
      let sched =
        match Crashtest.Interleave.schedule_of_name schedule with
        | Ok s -> s
        | Error e ->
            prerr_endline e;
            exit 2
      in
      let cw = cbuild workload in
      match
        Crashtest.Replay.creplay ~cfg cw ~schedule:sched ~crash_index ~mode:m
          ?seed:sseed ()
      with
      | None ->
          Printf.printf
            "crash index %d is beyond the interleaving's last PM event\n"
            crash_index
      | Some Crashtest.Oracle.Consistent ->
          Printf.printf
            "replay %s (%d writers, schedule %s) @ event %d (mode %s): \
             consistent\n"
            workload writers schedule crash_index mode
      | Some (Crashtest.Oracle.Violation d) ->
          Printf.printf
            "replay %s (%d writers, schedule %s) @ event %d (mode %s): \
             VIOLATION\n\
            \  %s\n"
            workload writers schedule crash_index mode d;
          exit 1)
  | None ->
      let names =
        match workload with
        | "all" -> Crashtest.Workload.concurrent_names
        | n -> [ n ]
      in
      let bad = ref false in
      let results = ref [] in
      List.iter
        (fun name ->
          let cw = cbuild name in
          let r = Crashtest.Explorer.explore_concurrent ~cfg cw in
          results := (cw, r) :: !results;
          Format.printf "%a@." Crashtest.Explorer.pp_cresult r;
          let failed = not (Crashtest.Explorer.cok r) in
          if cw.Crashtest.Workload.cnegative then
            if not failed then begin
              Format.printf
                "  NEGATIVE CONTROL MISSED: expected an oracle violation, \
                 none found@.";
              bad := true
            end
            else
              let f = List.hd r.Crashtest.Explorer.cr_failures in
              Format.printf
                "  negative control caught as expected; replay with:@.    %s@."
                (Crashtest.Replay.ccommand f)
          else if failed then begin
            bad := true;
            List.iteri
              (fun i f ->
                if i < 5 then
                  Format.printf "  %a@.    replay: %s@."
                    Crashtest.Explorer.pp_cfailure f
                    (Crashtest.Replay.ccommand f))
              r.Crashtest.Explorer.cr_failures
          end)
        names;
      let results = List.rev !results in
      let sum f = List.fold_left (fun a (_, r) -> a + f r) 0 results in
      let total_points =
        sum (fun r -> r.Crashtest.Explorer.cr_points_tested)
      in
      let positive_violations =
        List.fold_left
          (fun a ((cw : Crashtest.Workload.ct), r) ->
            if cw.Crashtest.Workload.cnegative then a
            else a + List.length r.Crashtest.Explorer.cr_failures)
          0 results
      in
      let total_wall =
        List.fold_left
          (fun a (_, r) -> a +. r.Crashtest.Explorer.cr_wall_seconds)
          0.0 results
      in
      let points_per_sec =
        if total_wall <= 0.0 then 0.0
        else float_of_int total_points /. total_wall
      in
      (match json_out with
      | None -> ()
      | Some path ->
          let open Workloads.Report.Json in
          let doc =
            Obj
              [
                ("schema", String "modpm-crashtest-concurrent/1");
                ("writers", Int writers);
                ("ops", Int ops);
                ("wall_seconds", Float total_wall);
                ("points_tested", Int total_points);
                ("points_per_sec", Float points_per_sec);
                ("positive_violations", Int positive_violations);
                ( "workloads",
                  List
                    (List.map
                       (fun ((cw : Crashtest.Workload.ct), r) ->
                         Obj
                           [
                             ( "workload",
                               String r.Crashtest.Explorer.cr_workload );
                             ("writers", Int r.Crashtest.Explorer.cr_writers);
                             ("ops", Int r.Crashtest.Explorer.cr_ops);
                             ( "negative",
                               Bool cw.Crashtest.Workload.cnegative );
                             ( "schedules",
                               Int r.Crashtest.Explorer.cr_schedules );
                             ( "total_events",
                               Int r.Crashtest.Explorer.cr_total_events );
                             ( "points_tested",
                               Int r.Crashtest.Explorer.cr_points_tested );
                             ( "crashes_sampled",
                               Int r.Crashtest.Explorer.cr_crashes_sampled );
                             ( "wall_seconds",
                               Float r.Crashtest.Explorer.cr_wall_seconds );
                             ( "failures",
                               Int
                                 (List.length
                                    r.Crashtest.Explorer.cr_failures) );
                             ("ok", Bool (Crashtest.Explorer.cok r));
                           ])
                       results) );
              ]
          in
          to_file path doc;
          Printf.printf "wrote %s\n" path);
      (match baseline with
      | None -> ()
      | Some path -> (
          let open Workloads.Report.Json in
          match
            let doc = of_file path in
            Option.bind (member "concurrent" doc) (member "max_violations")
            |> Fun.flip Option.bind to_number_opt
          with
          | exception Sys_error e ->
              Printf.eprintf "baseline %s unreadable: %s\n" path e;
              exit 2
          | exception Parse_error e ->
              Printf.eprintf "baseline %s: bad JSON: %s\n" path e;
              exit 2
          | None ->
              Printf.eprintf "baseline %s has no concurrent.max_violations\n"
                path;
              exit 2
          | Some max_v ->
              Printf.printf
                "concurrent sweep: %d positive-workload violation(s) vs \
                 baseline bound %.0f\n"
                positive_violations max_v;
              if float_of_int positive_violations > max_v then begin
                Printf.eprintf
                  "CONCURRENT REGRESSION: %d violation(s) exceed the \
                   committed bound (%.0f)\n"
                  positive_violations max_v;
                bad := true
              end));
      if !bad then exit 1

(* --shards N: the single-shard crash sweep of the serving layer.  Kill
   one shard (rotating targets) at swept PM-event budgets of its own
   region, prove the dead shard recovers alone inside the oracle window
   and that every sibling's dump is bit-identically untouched.  In
   memory the crash is Heap.crash + Recovery.recover; with [file] the
   crashed region is abandoned as kill -9 would leave it and the image
   is reopened via Recovery.open_file. *)
let shard_sweep ~nshards ~requests ~stride ~max_points ~seed ~file ~json_out =
  if nshards < 1 then begin
    Printf.eprintf "--shards must be >= 1\n";
    exit 2
  end;
  let stride = if stride = 1 then 97 else stride in
  let r =
    Shard.crash_sweep ~nshards ~requests ~stride ?max_points ~seed ?file ()
  in
  Printf.printf
    "shard sweep (%d shards, %s): %d crash points, %d consistent, %d \
     violations, %d sibling perturbations%s\n"
    r.Shard.sw_nshards
    (match file with Some _ -> "file-backed" | None -> "in-memory")
    r.Shard.sw_points r.Shard.sw_consistent
    (List.length r.Shard.sw_violations)
    r.Shard.sw_sibling_mismatches
    (if r.Shard.sw_exhausted then " (script exhausted: full coverage)" else "");
  List.iteri
    (fun i v -> if i < 5 then Printf.printf "  VIOLATION %s\n" v)
    r.Shard.sw_violations;
  (match json_out with
  | None -> ()
  | Some path ->
      let open Workloads.Report.Json in
      let doc =
        Obj
          [
            ("schema", String "modpm-shard-sweep/1");
            ("nshards", Int r.Shard.sw_nshards);
            ("requests", Int requests);
            ("seed", Int seed);
            ( "backing",
              String (match file with Some _ -> "file" | None -> "memory") );
            ("points", Int r.Shard.sw_points);
            ("consistent", Int r.Shard.sw_consistent);
            ("violations", Int (List.length r.Shard.sw_violations));
            ("sibling_mismatches", Int r.Shard.sw_sibling_mismatches);
            ("exhausted", Bool r.Shard.sw_exhausted);
            ("ok", Bool (Shard.sweep_ok r));
          ]
      in
      to_file path doc;
      Printf.printf "wrote %s\n" path);
  if not (Shard.sweep_ok r) then exit 1

let crashtest_cmd =
  let run action workload ops stride samples seed max_points quick replay mode
      sseed shrink jobs full_snapshots faults json_out baseline persist
      writers schedule shards =
    match shards with
    | Some nshards ->
        let requests = if quick then min (ops * 4) 64 else ops * 4 in
        shard_sweep ~nshards ~requests ~stride ~max_points ~seed ~file:None
          ~json_out
    | None ->
    (match action with
    | None | Some "sweep" -> ()
    | Some other ->
        Printf.eprintf "unknown action %S (only: sweep)\n" other;
        exit 2);
    let ops = if quick then min ops 8 else ops in
    let samples = if quick then min samples 2 else samples in
    let snapshot_mode =
      if full_snapshots then Pmem.Region.Full_copy else Pmem.Region.Journal
    in
    let cfg =
      {
        Crashtest.Explorer.default with
        stride;
        randomize_samples = samples;
        seed;
        max_points;
        snapshot_mode;
        jobs;
        faults;
        log = prerr_endline;
      }
    in
    if writers > 0 then begin
      if persist <> None then begin
        prerr_endline
          "--persist is not supported with --writers (Backup commits are \
           serialized by log-append order, not a root CAS)";
        exit 2
      end;
      if faults then begin
        prerr_endline "--faults is not supported with --writers yet";
        exit 2
      end;
      let workload = if workload = "mod" then "all" else workload in
      crashtest_concurrent ~cfg ~writers ~ops ~workload ~replay ~mode ~sseed
        ~schedule ~json_out ~baseline
    end
    else
    let build name =
      try Crashtest.Workload.build ?persist name ~ops
      with Invalid_argument msg ->
        prerr_endline msg;
        exit 2
    in
    match replay with
    | Some crash_index -> (
        (* deterministic single-point replay of a reported failure *)
        let m =
          match Crashtest.Explorer.mode_of_name mode with
          | Ok m -> m
          | Error e ->
              prerr_endline e;
              exit 2
        in
        let w = build workload in
        match
          Crashtest.Replay.replay ~cfg w ~crash_index ~mode:m ?seed:sseed ()
        with
        | None ->
            Printf.printf
              "crash index %d is beyond the workload's last PM event\n"
              crash_index
        | Some Crashtest.Oracle.Consistent ->
            Printf.printf
              "replay %s @ event %d (mode %s): consistent with a \
               FASE-boundary prefix\n"
              workload crash_index mode
        | Some (Crashtest.Oracle.Violation d) ->
            Printf.printf "replay %s @ event %d (mode %s): VIOLATION\n  %s\n"
              workload crash_index mode d;
            if shrink then begin
              let f =
                {
                  Crashtest.Explorer.workload;
                  ops;
                  crash_index;
                  mode = m;
                  survival_seed = sseed;
                  detail = d;
                }
              in
              let f' = Crashtest.Replay.minimize ~cfg f in
              Printf.printf "  minimal repro: %s\n"
                (Crashtest.Replay.command f')
            end;
            exit 1)
    | None ->
        let names =
          match workload with
          (* Under --faults or --persist backup, "all"/"mod" restrict to
             the seven basic structures: the STM's count-then-entries log
             protocol is not torn-write-safe by design, and only the
             basic structures (plus "batched") support the Backup
             policy. *)
          | ("all" | "mod") when faults || persist <> None ->
              Crashtest.Workload.basic_names
          | "all" -> Crashtest.Workload.names
          | "mod" -> Crashtest.Workload.mod_names
          | n -> [ n ]
        in
        let bad = ref false in
        let results = ref [] in
        List.iter
          (fun name ->
            let w = build name in
            let r = Crashtest.Explorer.explore ~cfg w in
            results := (w, r) :: !results;
            Format.printf "%a@." Crashtest.Explorer.pp_result r;
            let failed = not (Crashtest.Explorer.ok r) in
            if w.Crashtest.Workload.negative then
              if not failed then begin
                Format.printf
                  "  NEGATIVE CONTROL MISSED: expected an oracle violation, \
                   none found@.";
                bad := true
              end
              else
                let f = List.hd r.Crashtest.Explorer.failures in
                Format.printf
                  "  negative control caught as expected; replay with:@.  \
                   \  %s@."
                  (Crashtest.Replay.command f)
            else if failed then begin
              bad := true;
              List.iteri
                (fun i f ->
                  if i < 5 then
                    Format.printf "  %a@.    replay: %s@."
                      Crashtest.Explorer.pp_failure f
                      (Crashtest.Replay.command f))
                r.Crashtest.Explorer.failures
            end)
          names;
        let results = List.rev !results in
        let total_points =
          List.fold_left
            (fun a (_, r) -> a + r.Crashtest.Explorer.points_tested)
            0 results
        in
        let total_wall =
          List.fold_left
            (fun a (_, r) -> a +. r.Crashtest.Explorer.wall_seconds)
            0.0 results
        in
        let points_per_sec =
          if total_wall <= 0.0 then 0.0
          else float_of_int total_points /. total_wall
        in
        let sum f = List.fold_left (fun a (_, r) -> a + f r) 0 results in
        let total_fault_samples =
          sum (fun r -> r.Crashtest.Explorer.fault_samples)
        in
        let total_fault_recovered =
          sum (fun r -> r.Crashtest.Explorer.fault_recovered)
        in
        let total_fault_degraded =
          sum (fun r -> r.Crashtest.Explorer.fault_degraded)
        in
        let total_fault_fallbacks =
          sum (fun r -> r.Crashtest.Explorer.fault_fallbacks)
        in
        if faults then
          Printf.printf
            "fault sweep: %d samples, %d recovered, %d degraded (typed), %d \
             root fallbacks\n"
            total_fault_samples total_fault_recovered total_fault_degraded
            total_fault_fallbacks;
        (match json_out with
        | None -> ()
        | Some path ->
            let open Workloads.Report.Json in
            let doc =
              Obj
                [
                  ("schema", String "modpm-crashtest/1");
                  ("ops", Int ops);
                  ("stride", Int stride);
                  ("samples", Int samples);
                  ("seed", Int seed);
                  ( "snapshot_mode",
                    String
                      (match snapshot_mode with
                      | Pmem.Region.Journal -> "journal"
                      | Pmem.Region.Full_copy -> "full-copy") );
                  ("jobs", Int jobs);
                  ("faults", Bool faults);
                  ( "persist",
                    String
                      (match persist with
                      | Some Pmalloc.Heap.Backup -> "backup"
                      | _ -> "full") );
                  ("wall_seconds", Float total_wall);
                  ("points_tested", Int total_points);
                  ("points_per_sec", Float points_per_sec);
                  ("fault_samples", Int total_fault_samples);
                  ("fault_recovered", Int total_fault_recovered);
                  ("fault_degraded", Int total_fault_degraded);
                  ("fault_fallbacks", Int total_fault_fallbacks);
                  ( "workloads",
                    List
                      (List.map
                         (fun ((w : Crashtest.Workload.t), r) ->
                           Obj
                             [
                               ("workload", String r.Crashtest.Explorer.workload);
                               ("ops", Int r.Crashtest.Explorer.ops);
                               ("negative", Bool w.Crashtest.Workload.negative);
                               ( "total_events",
                                 Int r.Crashtest.Explorer.total_events );
                               ( "points_tested",
                                 Int r.Crashtest.Explorer.points_tested );
                               ( "points_skipped",
                                 Int r.Crashtest.Explorer.points_skipped );
                               ( "crashes_sampled",
                                 Int r.Crashtest.Explorer.crashes_sampled );
                               ( "wall_seconds",
                                 Float r.Crashtest.Explorer.wall_seconds );
                               ( "points_per_sec",
                                 Float (Crashtest.Explorer.points_per_sec r) );
                               ( "fault_samples",
                                 Int r.Crashtest.Explorer.fault_samples );
                               ( "fault_recovered",
                                 Int r.Crashtest.Explorer.fault_recovered );
                               ( "fault_degraded",
                                 Int r.Crashtest.Explorer.fault_degraded );
                               ( "fault_fallbacks",
                                 Int r.Crashtest.Explorer.fault_fallbacks );
                               ( "shards_resequenced",
                                 Int r.Crashtest.Explorer.shards_resequenced );
                               ( "failures",
                                 Int
                                   (List.length r.Crashtest.Explorer.failures)
                               );
                               ("ok", Bool (Crashtest.Explorer.ok r));
                             ])
                         results) );
                ]
            in
            to_file path doc;
            Printf.printf "wrote %s\n" path);
        (match baseline with
        | None -> ()
        | Some path -> (
            (* fail if throughput regressed to less than half the committed
               baseline (generous: CI machines vary, 2x does not) *)
            let open Workloads.Report.Json in
            match
              let doc = of_file path in
              Option.bind (member "points_per_sec" doc) to_number_opt
            with
            | exception Sys_error e ->
                Printf.eprintf "baseline %s unreadable: %s\n" path e;
                exit 2
            | exception Parse_error e ->
                Printf.eprintf "baseline %s: bad JSON: %s\n" path e;
                exit 2
            | None ->
                Printf.eprintf "baseline %s has no points_per_sec\n" path;
                exit 2
            | Some base ->
                Printf.printf
                  "throughput %.0f points/s vs baseline %.0f points/s\n"
                  points_per_sec base;
                if points_per_sec < base /. 2.0 then begin
                  Printf.eprintf
                    "PERF REGRESSION: %.0f points/s is more than 2x below \
                     the committed baseline (%.0f points/s)\n"
                    points_per_sec base;
                  bad := true
                end));
        if !bad then exit 1
  in
  let workload =
    Arg.(
      value & opt string "all"
      & info [ "workload"; "w" ]
          ~doc:
            (Printf.sprintf
               "Workload to explore: all, mod (every MOD-shadowed workload, \
                including the batched and composition sweeps), or one of %s."
               (String.concat ", " Crashtest.Workload.names)))
  in
  let ops =
    Arg.(
      value & opt int 40
      & info [ "ops" ] ~doc:"Operations per workload script.")
  in
  let stride =
    Arg.(
      value & opt int 1
      & info [ "stride" ] ~doc:"Test every STRIDE-th crash point.")
  in
  let samples =
    Arg.(
      value & opt int 3
      & info [ "samples" ]
          ~doc:"Randomize-mode survival samples per crash point.")
  in
  let max_points =
    Arg.(
      value & opt (some int) None
      & info [ "max-points" ] ~doc:"Cap on tested crash points.")
  in
  let quick =
    Arg.(
      value & flag
      & info [ "quick" ]
          ~doc:"Bounded smoke sweep (at most 8 ops, 2 samples) for CI.")
  in
  let replay =
    Arg.(
      value & opt (some int) None
      & info [ "replay" ]
          ~doc:"Replay one crash point: power fails after this PM event.")
  in
  let mode =
    Arg.(
      value & opt string "randomize"
      & info [ "mode" ] ~doc:"Crash mode for --replay: drop|keep|randomize.")
  in
  let sseed =
    Arg.(
      value & opt (some int) None
      & info [ "survival-seed" ]
          ~doc:"Line-survival seed for --replay in randomize mode.")
  in
  let shrink =
    Arg.(
      value & flag
      & info [ "shrink" ]
          ~doc:"After a failing --replay, print the minimal repro command.")
  in
  let action =
    Arg.(
      value & pos 0 (some string) None
      & info [] ~docv:"ACTION"
          ~doc:"Optional action; only $(b,sweep) (the default).")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ]
          ~doc:
            "Worker processes for the sweep (forked); 1 = sequential, 0 = \
             one per core.")
  in
  let full_snapshots =
    Arg.(
      value & flag
      & info [ "full-snapshots" ]
          ~doc:
            "Use the original full-image snapshot path instead of \
             copy-on-write journaling (slow; differential reference).")
  in
  let faults =
    Arg.(
      value & flag
      & info [ "faults" ]
          ~doc:
            "At each sampled crash point, additionally inject torn-line \
             crashes and armed media faults, and assert recovery either \
             succeeds or fails with a typed error (never silent \
             corruption).  With workload all/mod, restricts the sweep to \
             the seven basic structures.")
  in
  let schedule =
    Arg.(
      value & opt string "rr1"
      & info [ "schedule" ]
          ~doc:
            "Interleaving schedule for a concurrent --replay: rrN \
             (round-robin, quantum N) or seededN (seeded random walk).")
  in
  let doc =
    "Exhaustively explore the crash-state space of a workload: inject a \
     power failure after every PM event, recover, and check the recovered \
     state against the durable-linearizability oracle (plus the Section \
     5.4 trace invariants).  Negative controls (stm-broken, map-nofence) \
     are expected to violate the oracle.  With --writers N, sweep N \
     interleaved concurrent writers instead, across a panel of \
     deterministic schedules.  With --shards N, run the serving layer's \
     in-memory single-shard crash sweep (kill one shard, prove it \
     recovers alone and its siblings are bit-identically untouched)."
  in
  Cmd.v (Cmd.info "crashtest" ~doc)
    Term.(
      const run $ action $ workload $ ops $ stride $ samples
      $ Cli.seed_arg () $ max_points $ quick $ replay $ mode $ sseed $ shrink
      $ jobs $ full_snapshots $ faults $ Cli.json_arg $ Cli.baseline_arg
      $ Cli.persist_arg $ Cli.writers_arg $ schedule $ Cli.shards_arg)

(* -- check ------------------------------------------------------------- *)

let check_cmd =
  let run name backend scale =
    check_workload name;
    let trace = Workloads.Runner.run_traced name backend ~scale in
    let report = Mod_core.Consistency.check trace in
    Format.printf "%a@." Mod_core.Consistency.pp_report report;
    if not (Mod_core.Consistency.ok report) then exit 1
  in
  let doc =
    "Trace a workload and verify the Section 5.4 invariants (MOD passes; \
     PMDK backends fail invariant 1 by design)."
  in
  Cmd.v (Cmd.info "check" ~doc)
    Term.(const run $ workload_arg $ backend_arg $ scale_arg)

(* -- stats --------------------------------------------------------------- *)

(* Check a --metrics json payload: schema tag, per-row histogram
   consistency, and the acceptance-criterion identity -- the per-op
   fence-stall sum plus the unattributed remainder must equal the global
   Pmem.Stats stall counter. *)
let validate_metrics path =
  let open Workloads.Report.Json in
  let doc =
    try of_file path with
    | Sys_error e ->
        Printf.eprintf "%s unreadable: %s\n" path e;
        exit 2
    | Parse_error e ->
        Printf.eprintf "%s: bad JSON: %s\n" path e;
        exit 2
  in
  let fail fmt =
    Printf.ksprintf
      (fun msg ->
        Printf.eprintf "INVALID %s: %s\n" path msg;
        exit 1)
      fmt
  in
  let get what o key = match member key o with
    | Some v -> v
    | None -> fail "%s has no %S" what key
  in
  let num what o key =
    match to_number_opt (get what o key) with
    | Some v -> v
    | None -> fail "%s.%s is not a number" what key
  in
  (match Option.bind (member "schema" doc) to_string_opt with
  | Some "modpm-telemetry-v1" -> ()
  | Some other -> fail "schema is %S, want modpm-telemetry-v1" other
  | None -> fail "no schema tag");
  let totals = get "document" doc "totals" in
  let total_stall = num "totals" totals "fence_stall_ns" in
  let attributed = num "totals" totals "attributed_fence_stall_ns" in
  let unattributed = num "totals" totals "unattributed_fence_stall_ns" in
  let rows =
    match to_list_opt (get "document" doc "rows") with
    | Some l -> l
    | None -> fail "rows is not a list"
  in
  let row_sum = ref 0.0 in
  List.iteri
    (fun i row ->
      let what = Printf.sprintf "rows[%d]" i in
      row_sum := !row_sum +. num what row "fence_stall_ns";
      let lat = get what row "latency" in
      ignore (num what lat "p50_ns");
      ignore (num what lat "p99_ns");
      let count = int_of_float (num what lat "count") in
      let buckets =
        match to_list_opt (get what lat "buckets") with
        | Some l -> l
        | None -> fail "%s.latency.buckets is not a list" what
      in
      let bucket_sum =
        List.fold_left
          (fun acc b -> acc + int_of_float (num what b "count"))
          0 buckets
      in
      if bucket_sum <> count then
        fail "%s: bucket counts sum to %d, latency.count is %d" what bucket_sum
          count)
    rows;
  let tol = 1e-3 +. (1e-9 *. Float.abs total_stall) in
  if Float.abs (attributed +. unattributed -. total_stall) > tol then
    fail "attributed %.3f + unattributed %.3f != total stall %.3f" attributed
      unattributed total_stall;
  if Float.abs (!row_sum -. attributed) > tol then
    fail "per-row stall sum %.3f != attributed total %.3f" !row_sum attributed;
  Printf.printf
    "%s: valid (%d rows; attribution sums to the global stall counter: \
     %.1f + %.1f = %.1f ns)\n"
    path (List.length rows) attributed unattributed total_stall

(* A small all-structures demo so `modpm stats` shows live telemetry
   without any arguments: a few hundred ops across the seven structures,
   batched and unbatched, on one heap. *)
let stats_demo () =
  let module Imap = Mod_core.Dmap.Make (Pfds.Kv.Int) (Pfds.Kv.Int) in
  let module Iset = Mod_core.Dset.Make (Pfds.Kv.Int) in
  let heap = Pmalloc.Heap.create ~capacity_words:(1 lsl 20) () in
  let c = Pmalloc.Heap.attach_telemetry ~sink:Telemetry.Sink.Memory heap in
  let n = 200 in
  let m = Imap.open_or_create heap ~slot:0 in
  for i = 1 to n do
    Imap.insert m i (i * i)
  done;
  Imap.insert_many m (List.init 32 (fun i -> (n + i, i)));
  for i = 1 to n / 2 do
    ignore (Imap.find m i)
  done;
  let s = Iset.open_or_create heap ~slot:1 in
  for i = 1 to n do
    Iset.add s (i mod 64)
  done;
  let v = Mod_core.Dvec.open_or_create heap ~slot:2 in
  for i = 1 to n do
    Mod_core.Dvec.push_back v (Pmem.Word.of_int i)
  done;
  Mod_core.Dvec.push_back_many v
    (List.init 32 (fun i -> Pmem.Word.of_int i));
  let st = Mod_core.Dstack.open_or_create heap ~slot:3 in
  for i = 1 to n do
    Mod_core.Dstack.push st (Pmem.Word.of_int i)
  done;
  for _ = 1 to n / 2 do
    ignore (Mod_core.Dstack.pop st)
  done;
  let q = Mod_core.Dqueue.open_or_create heap ~slot:4 in
  for i = 1 to n do
    Mod_core.Dqueue.enqueue q (Pmem.Word.of_int i)
  done;
  for _ = 1 to n / 2 do
    ignore (Mod_core.Dqueue.dequeue q)
  done;
  let pq = Mod_core.Dpqueue.open_or_create heap ~slot:5 in
  for i = 1 to n do
    Mod_core.Dpqueue.insert pq (n - i)
  done;
  Mod_core.Dpqueue.insert_many pq (List.init 32 (fun i -> i));
  for _ = 1 to n / 2 do
    ignore (Mod_core.Dpqueue.delete_min pq)
  done;
  let sq = Mod_core.Dseq.open_or_create heap ~slot:6 in
  for i = 1 to n do
    Mod_core.Dseq.push_back sq (Pmem.Word.of_int i)
  done;
  Mod_core.Dseq.push_back_many sq (List.init 32 (fun i -> Pmem.Word.of_int i));
  Telemetry.report c

let stats_cmd =
  let run validate format out =
    match validate with
    | Some path -> validate_metrics path
    | None -> emit_metrics ~out format (stats_demo ())
  in
  let validate =
    Arg.(
      value
      & opt (some string) None
      & info [ "validate" ] ~docv:"FILE"
          ~doc:
            "Validate a $(b,--metrics json) payload: JSON parses, histograms \
             are self-consistent, and fence-stall attribution sums back to \
             the global counter.  Exits non-zero otherwise.")
  in
  let format =
    Arg.(
      value & opt string "text"
      & info [ "format"; "f" ] ~docv:"FORMAT"
          ~doc:"Output format for the demo report: json, prom or text.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Write the report to $(docv).")
  in
  let doc =
    "Telemetry utilities: with no arguments, run a small all-structures demo \
     and print its per-(structure x op) latency histograms and fence-stall \
     attribution; with $(b,--validate), check an exported JSON payload."
  in
  Cmd.v (Cmd.info "stats" ~doc) Term.(const run $ validate $ format $ out)

(* -- serve / killtest / fsck --------------------------------------------- *)

let kill9_workloads arg =
  let names =
    match arg with
    | "all" | "basic" -> Crashtest.Kill9.names
    | n -> [ n ]
  in
  List.iter
    (fun n ->
      if not (List.mem n Crashtest.Kill9.names) then begin
        Printf.eprintf "unknown kill9 workload %S; expected all or one of: %s\n"
          n
          (String.concat ", " Crashtest.Kill9.names);
        exit 2
      end)
    names;
  names

(* serve --shards N: the sharded serving layer under a zipfian
   memcached-style loop.  Reports per-shard throughput and latency
   percentiles; --json additionally writes the aggregate summary plus
   one modpm-telemetry-v1 document per shard (validate each with
   `modpm stats --validate`). *)
let serve_sharded ~nshards ~file ~requests ~keyspace ~theta ~seed ~persist
    ~inline ~capacity ~json_out =
  if nshards < 1 then begin
    Printf.eprintf "--shards must be >= 1\n";
    exit 2
  end;
  let mode = if inline then Shard.Inline else Shard.Domains in
  let t =
    Shard.create ~mode ~capacity_words:capacity ~seed ?persist ?file ~nshards
      ()
  in
  let warmup = min (max (requests / 10) 100) 2000 in
  let r = Shard.run_load ~theta ~seed ~warmup ~keyspace t ~requests () in
  Printf.printf "shards      %d (%s mode)\n" nshards (Shard.mode_name mode);
  Printf.printf "requests    %d (zipfian theta=%.2f over %d keys, warmup %d)\n"
    requests theta keyspace warmup;
  Printf.printf "wall        %.3f s (%.0f req/s)\n" r.Shard.lr_wall_s
    r.Shard.lr_wall_req_s;
  Printf.printf "sim clock   makespan %.3f ms, serial-equivalent %.3f ms \
                 (%.0f req/sim-s)\n"
    (r.Shard.lr_sim_makespan_ns /. 1e6)
    (r.Shard.lr_sim_total_ns /. 1e6)
    r.Shard.lr_sim_req_s;
  Printf.printf "  shard  routed  executed  stolen   sim ms    p50 ns   p99 ns\n";
  List.iter
    (fun m ->
      Printf.printf "  %5d  %6d  %8d  %6d  %7.3f  %8.0f %8.0f\n"
        m.Shard.m_id m.Shard.m_routed m.Shard.m_executed m.Shard.m_stolen
        (m.Shard.m_sim_ns /. 1e6) m.Shard.m_p50_ns m.Shard.m_p99_ns)
    r.Shard.lr_shards;
  (match json_out with
  | None -> ()
  | Some path ->
      let open Workloads.Report.Json in
      let doc =
        Obj
          [
            ("schema", String "modpm-serve-shard/1");
            ("nshards", Int nshards);
            ("mode", String (Shard.mode_name mode));
            ("requests", Int requests);
            ("theta", Float theta);
            ("keyspace", Int keyspace);
            ("seed", Int seed);
            ("wall_req_s", Float r.Shard.lr_wall_req_s);
            ("sim_req_s", Float r.Shard.lr_sim_req_s);
            ("sim_makespan_ns", Float r.Shard.lr_sim_makespan_ns);
            ("sim_total_ns", Float r.Shard.lr_sim_total_ns);
            ( "shards",
              List
                (List.map
                   (fun m ->
                     Obj
                       [
                         ("id", Int m.Shard.m_id);
                         ("routed", Int m.Shard.m_routed);
                         ("executed", Int m.Shard.m_executed);
                         ("stolen", Int m.Shard.m_stolen);
                         ("sim_ns", Float m.Shard.m_sim_ns);
                         ("fences", Int m.Shard.m_fences);
                         ("p50_ns", Float m.Shard.m_p50_ns);
                         ("p99_ns", Float m.Shard.m_p99_ns);
                       ])
                   r.Shard.lr_shards) );
          ]
      in
      to_file path doc;
      Printf.printf "wrote %s\n" path;
      (* one telemetry-v1 document per shard, for stats --validate *)
      let base = Filename.remove_extension path in
      List.iter
        (fun m ->
          let p = Printf.sprintf "%s.shard%d.json" base m.Shard.m_id in
          let oc = open_out p in
          output_string oc (Telemetry.Export.to_json m.Shard.m_report);
          output_char oc '\n';
          close_out oc;
          Printf.printf "wrote %s\n" p)
        r.Shard.lr_shards);
  Shard.close t

let serve_cmd =
  let run file workload ops capacity kill_commit kill_phase persist shards
      requests keyspace theta inline seed json_out =
    match shards with
    | Some nshards ->
        serve_sharded ~nshards ~file ~requests ~keyspace ~theta ~seed ~persist
          ~inline ~capacity:(max capacity (1 lsl 21)) ~json_out
    | None ->
        let file =
          match file with
          | Some f -> f
          | None ->
              Printf.eprintf
                "serve without --shards is the kill-test worker and requires \
                 --file IMAGE\n";
              exit 2
        in
        ignore (kill9_workloads workload : string list);
        let kill_at =
          match (kill_commit, kill_phase) with
          | None, _ -> None
          | Some c, phase -> (
              match Pmem.Backing.phase_of_name phase with
              | Ok p -> Some (c, p)
              | Error e ->
                  Printf.eprintf "--kill-phase: %s\n" e;
                  exit 2)
        in
        Crashtest.Kill9.serve ~capacity_words:capacity ?kill_at ?persist
          ~path:file ~workload ~ops ~ack_fd:Unix.stdout ()
  in
  let file =
    Arg.(
      value
      & opt (some string) None
      & info [ "file"; "f" ] ~docv:"IMAGE"
          ~doc:
            "Heap image file to create and run against (required without \
             $(b,--shards); with $(b,--shards N), optional base path -- \
             shard $(i,i) is file-backed at $(docv).$(i,i)).")
  in
  let workload =
    Arg.(
      value & opt string "map"
      & info [ "workload"; "w" ]
          ~doc:"Deterministic workload script to apply (worker mode).")
  in
  let ops =
    Arg.(value & opt int 60 & info [ "ops" ] ~doc:"Operations (worker mode).")
  in
  let capacity =
    Arg.(
      value
      & opt int (1 lsl 16)
      & info [ "capacity-words" ] ~doc:"Initial heap capacity in words.")
  in
  let kill_commit =
    Arg.(
      value
      & opt (some int) None
      & info [ "kill-commit" ] ~docv:"N"
          ~doc:"Self-SIGKILL inside the $(docv)-th file writeback batch.")
  in
  let kill_phase =
    Arg.(
      value & opt string "commit"
      & info [ "kill-phase" ]
          ~doc:
            "Writeback phase for $(b,--kill-commit): journal (before the \
             commit marker), commit (marker durable, not applied), apply \
             (half-applied) or applied (before the journal truncate).")
  in
  let requests =
    Arg.(
      value & opt int 20_000
      & info [ "requests" ] ~docv:"N"
          ~doc:"Measured requests for the sharded loop ($(b,--shards)).")
  in
  let keyspace =
    Arg.(
      value & opt int 10_000
      & info [ "keyspace" ] ~docv:"K"
          ~doc:"Distinct keys the zipfian loop draws from ($(b,--shards)).")
  in
  let theta =
    Arg.(
      value & opt float 0.99
      & info [ "theta" ]
          ~doc:"Zipfian skew in [0,1); 0 = uniform ($(b,--shards)).")
  in
  let inline =
    Arg.(
      value & flag
      & info [ "inline" ]
          ~doc:
            "Run the sharded loop on one domain (deterministic sim clocks) \
             instead of one worker domain per shard.")
  in
  let doc =
    "With $(b,--shards N): serve a zipfian memcached-style loop across N \
     shards, each owning its own heap, telemetry collector and (unless \
     $(b,--inline)) its own domain, with per-shard work queues and work \
     stealing; report per-shard throughput and p50/p99.  Without \
     $(b,--shards): the kill-test worker -- apply a deterministic workload \
     to a fresh file-backed heap, acking each durable operation on stdout \
     (meant to be forked and SIGKILLed by $(b,modpm killtest))."
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const run $ file $ workload $ ops $ capacity $ kill_commit $ kill_phase
      $ Cli.persist_arg $ Cli.shards_arg $ requests $ keyspace $ theta
      $ inline $ Cli.seed_arg ~default:42 () $ Cli.json_arg)

let killtest_cmd =
  let run workload kills ops seed dir keep json_out baseline persist shards =
    match shards with
    | Some nshards ->
        (* sharded kill test: file-backed single-shard crash sweep -- the
           crashed shard's image is abandoned mid-writeback and reopened
           through Recovery.open_file while its siblings keep serving *)
        let dir =
          match dir with Some d -> d | None -> Filename.get_temp_dir_name ()
        in
        if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
        let base = Filename.concat dir "modpm_shard_kill.img" in
        shard_sweep ~nshards ~requests:(ops * 4) ~stride:97
          ~max_points:(Some (max 1 kills)) ~seed ~file:(Some base) ~json_out
    | None ->
    let names = kill9_workloads workload in
    let names =
      (* siblings needs multi-slot commit points, which the Backup policy
         rejects; drop it from "all" sweeps under --persist backup *)
      if persist = None then names
      else
        List.filter
          (fun n -> List.mem n Crashtest.Workload.backup_names)
          names
    in
    (if names = [] then begin
       Printf.eprintf
         "no selected kill9 workload supports --persist backup (expected %s)\n"
         (String.concat ", " Crashtest.Workload.backup_names);
       exit 2
     end);
    let dir =
      match dir with Some d -> d | None -> Filename.get_temp_dir_name ()
    in
    if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
    let per = max 1 (kills / List.length names) in
    let results =
      List.map
        (fun name ->
          let r =
            Crashtest.Kill9.run ~dir ~ops ~seed ~keep ~log:prerr_endline
              ?persist ~workload:name ~kills:per ()
          in
          Format.printf "%a@." Crashtest.Kill9.pp_result r;
          List.iteri
            (fun i f -> if i < 5 then Printf.printf "  FAIL %s\n" f)
            (Crashtest.Kill9.failures r);
          r)
        names
    in
    let sum f = List.fold_left (fun a r -> a + f r) 0 results in
    let violations = sum (fun r -> r.Crashtest.Kill9.violations) in
    let escaped = sum (fun r -> r.Crashtest.Kill9.escaped) in
    let trials = sum (fun r -> r.Crashtest.Kill9.kills) in
    let max_reopen_ns =
      List.fold_left
        (fun a r -> Float.max a r.Crashtest.Kill9.max_reopen_ns)
        0.0 results
    in
    let mean_reopen_ns =
      let s =
        List.fold_left
          (fun a r ->
            a
            +. (r.Crashtest.Kill9.mean_reopen_ns
               *. float_of_int r.Crashtest.Kill9.kills))
          0.0 results
      in
      if trials = 0 then 0.0 else s /. float_of_int trials
    in
    Printf.printf
      "\nkill9 total: %d trials across %d workloads, %d violations, %d \
       escaped; reopen mean %.2fms max %.2fms\n"
      trials (List.length names) violations escaped (mean_reopen_ns /. 1e6)
      (max_reopen_ns /. 1e6);
    let bad = ref (violations > 0 || escaped > 0) in
    (match json_out with
    | None -> ()
    | Some path ->
        let open Workloads.Report.Json in
        let doc =
          Obj
            [
              ("schema", String "modpm-kill9/1");
              ("ops", Int ops);
              ("seed", Int seed);
              ( "persist",
                String
                  (match persist with
                  | Some Pmalloc.Heap.Backup -> "backup"
                  | _ -> "full") );
              ("trials", Int trials);
              ("violations", Int violations);
              ("escaped", Int escaped);
              ("mean_reopen_ms", Float (mean_reopen_ns /. 1e6));
              ("max_reopen_ms", Float (max_reopen_ns /. 1e6));
              ( "workloads",
                List
                  (List.map
                     (fun (r : Crashtest.Kill9.result) ->
                       Obj
                         [
                           ("workload", String r.workload);
                           ("trials", Int r.kills);
                           ("completed", Int r.completed_runs);
                           ("violations", Int r.violations);
                           ("escaped", Int r.escaped);
                           ("typed_errors", Int r.typed_errors);
                           ("journal_replayed", Int r.replayed);
                           ("journal_discarded", Int r.discarded);
                           ("journal_clean", Int r.clean_journals);
                           ("fsck_clean", Int r.fsck_clean);
                           ("fsck_degraded", Int r.fsck_degraded);
                           ("fsck_corrupt", Int r.fsck_corrupt);
                           ("mean_reopen_ms", Float (r.mean_reopen_ns /. 1e6));
                           ("max_reopen_ms", Float (r.max_reopen_ns /. 1e6));
                           ("wall_seconds", Float r.wall_seconds);
                           ("ok", Bool (Crashtest.Kill9.ok r));
                         ])
                     results) );
            ]
        in
        to_file path doc;
        Printf.printf "wrote %s\n" path);
    (match baseline with
    | None -> ()
    | Some path -> (
        (* the hard gate is zero violations (checked above); the baseline
           additionally bounds reopen latency -- generous 10x headroom, CI
           machines vary *)
        let open Workloads.Report.Json in
        match
          let doc = of_file path in
          (* accept both bench/BASELINE.json (nested under "kill9") and a
             previous BENCH_kill9.json (top-level) *)
          let nested =
            Option.bind (member "kill9" doc) (member "max_reopen_ms")
          in
          let field =
            match nested with Some v -> Some v | None -> member "max_reopen_ms" doc
          in
          Option.bind field to_number_opt
        with
        | exception Sys_error e ->
            Printf.eprintf "baseline %s unreadable: %s\n" path e;
            exit 2
        | exception Parse_error e ->
            Printf.eprintf "baseline %s: bad JSON: %s\n" path e;
            exit 2
        | None ->
            Printf.eprintf "baseline %s has no max_reopen_ms\n" path;
            exit 2
        | Some base_ms ->
            let ms = max_reopen_ns /. 1e6 in
            Printf.printf "reopen max %.2fms vs baseline %.2fms\n" ms base_ms;
            if base_ms > 0.0 && ms > base_ms *. 10.0 then begin
              Printf.eprintf
                "REOPEN REGRESSION: %.2fms is more than 10x the committed \
                 baseline (%.2fms)\n"
                ms base_ms;
              bad := true
            end));
    if !bad then exit 1
  in
  let workload =
    Arg.(
      value & opt string "all"
      & info [ "workload"; "w" ]
          ~doc:
            (Printf.sprintf
               "Workload to kill: all (sweep), or one of %s."
               (String.concat ", " Crashtest.Kill9.names)))
  in
  let kills =
    Arg.(
      value & opt int 60
      & info [ "kills" ]
          ~doc:"Total kill trials, split evenly across the chosen workloads.")
  in
  let ops =
    Arg.(value & opt int 60 & info [ "ops" ] ~doc:"Operations per trial.")
  in
  let dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "dir" ] ~docv:"DIR"
          ~doc:"Directory for image files (default: system temp).")
  in
  let keep =
    Arg.(
      value & flag
      & info [ "keep" ] ~doc:"Keep post-mortem images instead of deleting.")
  in
  let doc =
    "Real kill-9 durability test: fork a worker applying a deterministic \
     workload to a file-backed heap, SIGKILL it -- at a random wall-clock \
     instant or deterministically inside the writeback protocol -- reopen \
     the image in the surviving process, and check the recovered state \
     against the durable-linearizability oracle.  Every post-mortem image \
     is also classified by fsck.  With $(b,--shards N), instead sweep \
     crashes of one file-backed shard and check its siblings are untouched \
     while it recovers alone.  Exits non-zero on any oracle violation or \
     escaped exception."
  in
  Cmd.v (Cmd.info "killtest" ~doc)
    Term.(
      const run $ workload $ kills $ ops $ Cli.seed_arg ~default:7 () $ dir
      $ keep $ Cli.json_arg $ Cli.baseline_arg $ Cli.persist_arg
      $ Cli.shards_arg)

let fsck_cmd =
  let run image repair_flag =
    let report =
      if repair_flag then Pmalloc.Fsck.repair image
      else Pmalloc.Fsck.check image
    in
    Format.printf "%s: %a@." image Pmalloc.Fsck.pp_report report;
    match report.Pmalloc.Fsck.verdict with
    | Pmalloc.Fsck.Clean | Pmalloc.Fsck.Repaired -> ()
    | Pmalloc.Fsck.Degraded -> exit 1
    | Pmalloc.Fsck.Corrupt -> exit 2
  in
  let image =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"IMAGE" ~doc:"Heap image file to check.")
  in
  let repair =
    Arg.(
      value & flag
      & info [ "repair" ]
          ~doc:
            "Rewrite the image from the surviving root-record copies, \
             quarantining unrecoverable slots, so it always reopens.")
  in
  let doc =
    "Offline heap-image checker: validate the header and whole-image \
     checksum, resolve the sidecar journal, walk every root record and its \
     reachable object graph, and report clean, degraded (single-copy roots \
     or a pending journal) or corrupt.  Exit status: 0 clean/repaired, 1 \
     degraded, 2 corrupt."
  in
  Cmd.v (Cmd.info "fsck" ~doc) Term.(const run $ image $ repair)

(* -- fig4 / machine ------------------------------------------------------ *)

let fig4_cmd =
  let run () =
    (* measure through the simulated hardware, like bench/main.exe fig4 *)
    Printf.printf "flushes/fence  measured (ns)  amdahl (ns)\n";
    List.iter
      (fun n ->
        let region = Pmem.Region.create ~capacity_words:(1 lsl 16) () in
        let lines = 320 in
        let offs =
          Array.init lines (fun i -> i * Pmem.Config.words_per_line)
        in
        Array.iter
          (fun off -> Pmem.Region.store region off (Pmem.Word.of_int 1))
          offs;
        let stats = Pmem.Region.stats region in
        let t0 = stats.Pmem.Stats.now_ns in
        Array.iteri
          (fun i off ->
            Pmem.Region.clwb region off;
            if (i + 1) mod n = 0 then Pmem.Region.sfence region)
          offs;
        if lines mod n <> 0 then Pmem.Region.sfence region;
        Printf.printf "%13d  %13.1f  %11.1f\n" n
          ((stats.Pmem.Stats.now_ns -. t0) /. float_of_int lines)
          (Pmem.Latency.amdahl_avg_ns n))
      [ 1; 2; 4; 8; 16; 32 ]
  in
  let doc = "Run the flush-concurrency microbenchmark (Figure 4)." in
  Cmd.v (Cmd.info "fig4" ~doc) Term.(const run $ const ())

let machine_cmd =
  let run () = print_endline (Pmem.Config.describe ()) in
  let doc = "Print the simulated machine configuration (Table 1)." in
  Cmd.v (Cmd.info "machine" ~doc) Term.(const run $ const ())

let () =
  let doc = "MOD: minimally ordered durable datastructures (reproduction)" in
  let info = Cmd.info "modpm" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            run_cmd; crash_cmd; crashtest_cmd; check_cmd; stats_cmd;
            serve_cmd; killtest_cmd; fsck_cmd; fig4_cmd; machine_cmd;
          ]))
